package server

import (
	"sync"
	"testing"
	"time"

	"swarm/internal/model"
	"swarm/internal/wire"
)

// qosWaitQueued polls until the client's class has depth queued requests.
func qosWaitQueued(t *testing.T, q *qosSched, client wire.ClientID, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, ts := range q.TenantStats() {
			if ts.Client == client && ts.Queued >= depth {
				return
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("client %d never reached queue depth %d", client, depth)
}

// TestQoSDRROrder pins the deficit-round-robin dispatch order. One slot
// makes service sequential; a blocker from a third class holds the slot
// while two classes with weights 2:1 queue four equal-cost requests
// each. The schedule must interleave 2:1 while both are backlogged —
// never drain one class before the other gets service.
func TestQoSDRROrder(t *testing.T) {
	const (
		clientA = wire.ClientID(1) // weight 2
		clientB = wire.ClientID(2) // weight 1
		blocker = wire.ClientID(9)
	)
	q := newQoSSched(QoSConfig{
		Slots:   1,
		Quantum: qosMinCost,
		Classes: map[wire.ClientID]ClassConfig{
			clientA: {Weight: 2},
			clientB: {Weight: 1},
		},
	})

	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if !q.Do(blocker, qosMinCost, func() { close(running); <-release }) {
			t.Error("blocker shed")
		}
	}()
	<-running

	var mu sync.Mutex
	var order []wire.ClientID
	enqueue := func(client wire.ClientID, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !q.Do(client, qosMinCost, func() {
					mu.Lock()
					order = append(order, client)
					mu.Unlock()
				}) {
					t.Errorf("client %d shed", client)
				}
			}()
			qosWaitQueued(t, q, client, i+1)
		}
	}
	enqueue(clientA, 4)
	enqueue(clientB, 4)

	close(release)
	wg.Wait()

	want := []wire.ClientID{clientA, clientA, clientB, clientA, clientA, clientB, clientB, clientB}
	if len(order) != len(want) {
		t.Fatalf("served %d requests, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestQoSByteQuotaDeterministic drives the byte token bucket with a fake
// clock: a full burst admits exactly two requests, the third sheds
// without running, and one second of refill buys exactly one more.
func TestQoSByteQuotaDeterministic(t *testing.T) {
	clock := model.NewFakeClock(time.Unix(0, 0))
	client := wire.ClientID(7)
	q := newQoSSched(QoSConfig{
		Slots: 4,
		Clock: clock,
		Classes: map[wire.ClientID]ClassConfig{
			client: {ByteRate: qosMinCost, ByteBurst: 2 * qosMinCost},
		},
	})
	ran := 0
	do := func() bool { return q.Do(client, qosMinCost, func() { ran++ }) }

	if !do() || !do() {
		t.Fatal("burst-covered requests shed")
	}
	if do() {
		t.Fatal("third request admitted past an empty bucket")
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 (shed request must not run)", ran)
	}
	clock.Advance(time.Second)
	if !do() {
		t.Fatal("request shed after a full second of refill")
	}
	if do() {
		t.Fatal("refill admitted two requests, rate buys one")
	}

	st := q.TenantStats()
	if len(st) != 1 || st[0].Ops != 3 || st[0].Sheds != 2 {
		t.Fatalf("stats = %+v, want 3 ops / 2 sheds", st)
	}
}

// TestQoSOpQuotaDeterministic does the same for the op-rate bucket; op
// tokens are charged before byte tokens, one per request regardless of
// cost.
func TestQoSOpQuotaDeterministic(t *testing.T) {
	clock := model.NewFakeClock(time.Unix(0, 0))
	client := wire.ClientID(3)
	q := newQoSSched(QoSConfig{
		Slots: 4,
		Clock: clock,
		Classes: map[wire.ClientID]ClassConfig{
			client: {OpRate: 1, OpBurst: 2},
		},
	})
	do := func() bool { return q.Do(client, 1<<20, func() {}) }
	if !do() || !do() {
		t.Fatal("burst-covered ops shed")
	}
	if do() {
		t.Fatal("op admitted past an empty op bucket")
	}
	clock.Advance(time.Second)
	if !do() {
		t.Fatal("op shed after refill")
	}
}

// TestQoSAdmissionBound verifies the per-class queue bound: with the
// only slot held by another tenant, a class may queue MaxQueuedOps
// requests and the next one sheds immediately instead of queueing.
func TestQoSAdmissionBound(t *testing.T) {
	const (
		client  = wire.ClientID(1)
		blocker = wire.ClientID(9)
	)
	q := newQoSSched(QoSConfig{
		Slots: 1,
		Classes: map[wire.ClientID]ClassConfig{
			client: {MaxQueuedOps: 2},
		},
	})
	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Do(blocker, qosMinCost, func() { close(running); <-release })
	}()
	<-running

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !q.Do(client, qosMinCost, func() {}) {
				t.Error("within-bound request shed")
			}
		}()
		qosWaitQueued(t, q, client, i+1)
	}
	if q.Do(client, qosMinCost, func() { t.Error("shed request ran") }) {
		t.Fatal("request admitted past MaxQueuedOps")
	}

	close(release)
	wg.Wait()
	for _, ts := range q.TenantStats() {
		if ts.Client == client {
			if ts.Ops != 2 || ts.Sheds != 1 || ts.Queued != 0 {
				t.Fatalf("stats = %+v, want 2 ops / 1 shed / 0 queued", ts)
			}
		}
	}
}

// TestQoSByteBound verifies the queued-bytes admission bound.
func TestQoSByteBound(t *testing.T) {
	const (
		client  = wire.ClientID(1)
		blocker = wire.ClientID(9)
	)
	cost := int64(8 << 10)
	q := newQoSSched(QoSConfig{
		Slots: 1,
		Classes: map[wire.ClientID]ClassConfig{
			client: {MaxQueuedBytes: 2 * cost},
		},
	})
	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Do(blocker, qosMinCost, func() { close(running); <-release })
	}()
	<-running
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Do(client, cost, func() {})
		}()
		qosWaitQueued(t, q, client, i+1)
	}
	if q.Do(client, cost, func() {}) {
		t.Fatal("request admitted past MaxQueuedBytes")
	}
	close(release)
	wg.Wait()
}

// TestQoSClassCapSharesSlots pins the weight-proportional concurrency
// cap: under contention each class gets its ceiling share of the slot
// budget (never below one); alone it gets every slot.
func TestQoSClassCapSharesSlots(t *testing.T) {
	q := newQoSSched(QoSConfig{
		Slots: 2,
		Classes: map[wire.ClientID]ClassConfig{
			1: {Weight: 8},
			2: {Weight: 1},
		},
	})
	q.mu.Lock()
	defer q.mu.Unlock()
	a := q.classLocked(1)
	b := q.classLocked(2)

	// Alone: full budget.
	a.active = true
	if got := q.classCapLocked(a); got != 2 {
		t.Fatalf("solo cap = %d, want all %d slots", got, 2)
	}
	// Contended: ceil(2×8/9) = 2 for the heavy class, but the light one
	// is still guaranteed a slot: ceil(2×1/9) rounds up to 1.
	b.active = true
	if got := q.classCapLocked(a); got != 2 {
		t.Fatalf("heavy cap = %d, want 2", got)
	}
	if got := q.classCapLocked(b); got != 1 {
		t.Fatalf("light cap = %d, want 1", got)
	}
}

// TestQoSHistogram pins the fixed-bucket histogram's quantile behavior:
// quantiles come back as power-of-two bucket upper bounds.
func TestQoSHistogram(t *testing.T) {
	var h latencyHist
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	for i := 0; i < 99; i++ {
		h.record(50 * time.Microsecond) // bucket 0: ≤ 64µs
	}
	h.record(10 * time.Millisecond) // bucket 8: ≤ 16.384ms
	if got := h.quantile(0.50); got != 64*time.Microsecond {
		t.Fatalf("p50 = %v, want 64µs", got)
	}
	if got := h.quantile(0.99); got != 16384*time.Microsecond {
		t.Fatalf("p99 = %v, want 16.384ms", got)
	}
	// An observation beyond the last bucket lands in the catch-all.
	h.record(time.Hour)
	if got := h.quantile(1.0); got != histBase<<(histBuckets-1) {
		t.Fatalf("max quantile = %v, want catch-all bucket", got)
	}
}

// TestQoSConcurrent hammers the scheduler from many goroutines across
// several classes (race-detector coverage for the dispatch path) and
// checks the books balance afterwards.
func TestQoSConcurrent(t *testing.T) {
	q := newQoSSched(QoSConfig{
		Slots:   2,
		Quantum: qosMinCost,
		Classes: map[wire.ClientID]ClassConfig{
			1: {Weight: 4},
			2: {Weight: 1},
			3: {Weight: 1, MaxQueuedOps: 8},
		},
	})
	const perClient = 50
	var served, shed sync.Map
	var wg sync.WaitGroup
	for _, client := range []wire.ClientID{1, 2, 3} {
		servedN, shedN := new(int64), new(int64)
		served.Store(client, servedN)
		shed.Store(client, shedN)
		for i := 0; i < perClient; i++ {
			wg.Add(1)
			go func(client wire.ClientID) {
				defer wg.Done()
				var mu sync.Mutex
				ok := q.Do(client, qosMinCost*2, func() {
					mu.Lock() // trivial body; the scheduler is the subject
					mu.Unlock()
				})
				q.mu.Lock()
				if ok {
					*mustLoad(&served, client)++
				} else {
					*mustLoad(&shed, client)++
				}
				q.mu.Unlock()
			}(client)
		}
	}
	wg.Wait()

	var totalServed, totalShed uint64
	for _, ts := range q.TenantStats() {
		if ts.Queued != 0 || ts.QueuedBytes != 0 {
			t.Fatalf("client %d: residue in queue after drain: %+v", ts.Client, ts)
		}
		if s := *mustLoad(&served, ts.Client); uint64(s) != ts.Ops {
			t.Fatalf("client %d: served %d vs stats %d", ts.Client, s, ts.Ops)
		}
		if s := *mustLoad(&shed, ts.Client); uint64(s) != ts.Sheds {
			t.Fatalf("client %d: shed %d vs stats %d", ts.Client, s, ts.Sheds)
		}
		totalServed += ts.Ops
		totalShed += ts.Sheds
	}
	if totalServed+totalShed != 3*perClient {
		t.Fatalf("served %d + shed %d != offered %d", totalServed, totalShed, 3*perClient)
	}
}

func mustLoad(m *sync.Map, client wire.ClientID) *int64 {
	v, _ := m.Load(client)
	return v.(*int64)
}
