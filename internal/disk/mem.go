package disk

import "sync"

// MemDisk is an in-memory Disk, primarily for tests. The zero value is not
// usable; create one with NewMemDisk.
type MemDisk struct {
	mu     sync.RWMutex
	data   []byte
	closed bool

	// FailWrites, when set, makes every WriteAt return the given error.
	// Tests use it for failure injection.
	failMu     sync.Mutex
	failWrites error
	failReads  error
}

var _ Disk = (*MemDisk)(nil)

// NewMemDisk returns an in-memory disk of the given size in bytes.
func NewMemDisk(size int64) *MemDisk {
	return &MemDisk{data: make([]byte, size)}
}

// FailWrites arranges for subsequent writes to fail with err (nil clears).
func (d *MemDisk) FailWrites(err error) {
	d.failMu.Lock()
	defer d.failMu.Unlock()
	d.failWrites = err
}

// FailReads arranges for subsequent reads to fail with err (nil clears).
func (d *MemDisk) FailReads(err error) {
	d.failMu.Lock()
	defer d.failMu.Unlock()
	d.failReads = err
}

// ReadAt implements Disk.
func (d *MemDisk) ReadAt(p []byte, off int64) error {
	d.failMu.Lock()
	ferr := d.failReads
	d.failMu.Unlock()
	if ferr != nil {
		return ferr
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(int64(len(d.data)), len(p), off); err != nil {
		return err
	}
	copy(p, d.data[off:])
	return nil
}

// WriteAt implements Disk.
func (d *MemDisk) WriteAt(p []byte, off int64) error {
	d.failMu.Lock()
	ferr := d.failWrites
	d.failMu.Unlock()
	if ferr != nil {
		return ferr
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(int64(len(d.data)), len(p), off); err != nil {
		return err
	}
	copy(d.data[off:], p)
	return nil
}

// Sync implements Disk (a no-op for memory).
func (d *MemDisk) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Size implements Disk.
func (d *MemDisk) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

// Close implements Disk.
func (d *MemDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Snapshot returns a copy of the disk contents; used by crash-simulation
// tests to capture the state at an arbitrary instant.
func (d *MemDisk) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}

// Restore overwrites the disk contents from a snapshot.
func (d *MemDisk) Restore(snap []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(d.data, snap)
}
