// Package swarm is the public API of this Swarm implementation — a
// reproduction of "The Swarm Scalable Storage System" (Hartman, Murdock,
// Spalink; ICDCS 1999).
//
// Swarm provides scalable, reliable, cost-effective storage from a
// cluster of simple storage servers. Clients batch their writes into an
// append-only log striped across the servers with rotating parity; no
// client ever synchronizes with another client, and no server ever talks
// to another server. Services — a cleaner, atomic recovery units, a
// logical disk, a block cache, and the Sting file system — stack on the
// log.
//
// Typical use:
//
//	cluster, _ := swarm.NewLocalCluster(4, swarm.ServerOptions{})
//	defer cluster.Close()
//	client, _ := cluster.Connect(1)
//	defer client.Close()
//	fs, _ := client.Mount(swarm.FSConfig{})
//	f, _ := fs.Create("/hello")
//	f.WriteAt([]byte("world"), 0)
//	f.Close()
//	fs.Unmount()
//
// Servers can equally run as separate processes (cmd/swarmd) and be
// reached over TCP via ConnectAddrs.
package swarm

import (
	"swarm/internal/aru"
	"swarm/internal/blockcache"
	"swarm/internal/cleaner"
	"swarm/internal/codec"
	"swarm/internal/core"
	"swarm/internal/ldisk"
	"swarm/internal/placement"
	"swarm/internal/rebalance"
	"swarm/internal/service"
	"swarm/internal/sting"
	"swarm/internal/transport"
	"swarm/internal/vfs"
	"swarm/internal/wire"
)

// Re-exported identifier and core types. These aliases are the public
// names; the implementation lives in internal packages.
type (
	// ClientID identifies a log owner.
	ClientID = wire.ClientID
	// ServerID identifies a storage server.
	ServerID = wire.ServerID
	// FID is a fragment identifier.
	FID = wire.FID
	// ServiceID identifies a service stacked on the log.
	ServiceID = core.ServiceID
	// BlockAddr names a block in the log.
	BlockAddr = core.BlockAddr
	// Log is a client's striped log (the core abstraction).
	Log = core.Log
	// Recovery is the state handed back when opening an existing log.
	Recovery = core.Recovery
	// Service is the interface of everything stacked on a log.
	Service = service.Service
	// Registry routes log events to services.
	Registry = service.Registry
	// Cleaner reclaims log space.
	Cleaner = cleaner.Cleaner
	// CleanerConfig tunes the cleaner.
	CleanerConfig = cleaner.Config
	// ARUManager provides atomic recovery units.
	ARUManager = aru.Manager
	// ARU is one atomic recovery unit.
	ARU = aru.Unit
	// LogicalDisk is the overwritable-block service.
	LogicalDisk = ldisk.Disk
	// BlockCache is the client-side block cache.
	BlockCache = blockcache.Cache
	// FS is a mounted Sting file system.
	FS = sting.FS
	// Codec transforms block payloads (compression, encryption).
	Codec = codec.Codec
	// FileSystem is the file-system interface (Sting and extfs).
	FileSystem = vfs.FileSystem
	// File is an open file handle.
	File = vfs.File
	// FileInfo describes a file.
	FileInfo = vfs.FileInfo
	// DirEntry is a directory listing entry.
	DirEntry = vfs.DirEntry
	// ResilientConfig tunes the retry/backoff and circuit-breaker layer
	// that ConnectAddrs wraps around each server connection.
	ResilientConfig = transport.ResilientConfig
	// Health is a per-server snapshot of circuit state and failure
	// counters, as returned by Client.Health.
	Health = transport.Health
	// PlacementInfo is a snapshot of the placement map: epoch plus each
	// member's state, as returned by Client.Placement.
	PlacementInfo = placement.Info
	// PlacementMember is one server's entry in a PlacementInfo.
	PlacementMember = placement.Member
	// ServerState is a placement member's lifecycle state.
	ServerState = placement.State
	// RebalanceStats is a drain's progress snapshot.
	RebalanceStats = rebalance.Stats
	// RebalanceOptions tunes a background drain.
	RebalanceOptions = rebalance.Options
)

// Placement member states.
const (
	// ServerActive: the server receives new stripe placements.
	ServerActive = placement.Active
	// ServerDraining: excluded from new placement; being emptied.
	ServerDraining = placement.Draining
)

// Codec constructors: the paper's compression and encryption services
// (§2.2), pluggable into the logical disk via SetCodec.
var (
	// NewFlateCodec is the compression service (DEFLATE).
	NewFlateCodec = codec.NewFlate
	// NewAESCodec is the encryption service (AES-CTR, random nonces).
	NewAESCodec = codec.NewAESCTR
	// NewCodecChain composes codecs (compress, then encrypt).
	NewCodecChain = codec.NewChain
)

// Re-exported file-system helpers.
var (
	// ReadFile reads a whole file.
	ReadFile = vfs.ReadFile
	// WriteFile creates a file with contents.
	WriteFile = vfs.WriteFile
	// MkdirAll creates a directory and parents.
	MkdirAll = vfs.MkdirAll
	// Walk visits a tree.
	Walk = vfs.Walk
)

// Common errors re-exported for matching with errors.Is.
var (
	// ErrNotExist: path does not exist.
	ErrNotExist = vfs.ErrNotExist
	// ErrExist: path already exists.
	ErrExist = vfs.ErrExist
	// ErrLost: a fragment is unavailable and unreconstructable.
	ErrLost = core.ErrLost
	// ErrUnavailable: a storage server could not be reached (including
	// fast-failed calls while its circuit breaker is open).
	ErrUnavailable = transport.ErrUnavailable
)
