package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/wire"
)

// TestMuxDemuxOutOfOrder drives the multiplexer against a raw server that
// deliberately answers in reverse arrival order: four concurrent RPCs on
// ONE connection, each response routed back to its caller by request ID.
// The old checkout-a-connection transport could not even send the second
// request before the first response.
func TestMuxDemuxOutOfOrder(t *testing.T) {
	const nreq = 4
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			c, err := ln.Accept()
			if err != nil {
				return err
			}
			defer c.Close()
			r := wire.NewConnReader(c)
			reqs := make([]*wire.Request, 0, nreq)
			for len(reqs) < nreq {
				req, err := wire.ReadRequestFrame(r)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			for i := len(reqs) - 1; i >= 0; i-- {
				req := reqs[i]
				var rr wire.ReadRequest
				if err := rr.Decode(wire.NewDecoder(req.Body)); err != nil {
					return err
				}
				// The response payload encodes the request's Len, so a
				// misrouted response is detectable by content, not just size.
				data := bytes.Repeat([]byte{byte(rr.Len)}, int(rr.Len))
				if err := wire.WriteResponse(c, req.Op, req.ID, &wire.ReadResponse{Data: data}); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	sc, err := DialTCPOpts(1, ln.Addr().String(), 1, TCPOptions{PoolSize: 1, MaxInFlight: nreq})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	fid := wire.MakeFID(1, 0)
	var wg sync.WaitGroup
	errs := make(chan error, nreq)
	for i := 0; i < nreq; i++ {
		wg.Add(1)
		go func(n uint32) {
			defer wg.Done()
			data, err := sc.Read(fid, 0, n)
			if err != nil {
				errs <- fmt.Errorf("read %d: %w", n, err)
				return
			}
			if uint32(len(data)) != n {
				errs <- fmt.Errorf("read %d: got %d bytes", n, len(data))
				return
			}
			for _, b := range data {
				if b != byte(n) {
					errs <- fmt.Errorf("read %d: got a response routed to the wrong request (byte %d)", n, b)
					return
				}
			}
		}(uint32(10 + i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestMuxLockstepContract runs the full ServerConn contract with
// MaxInFlight 1 — the degenerate lock-step configuration must behave
// identically, just slower.
func TestMuxLockstepContract(t *testing.T) {
	srv, err := server.ListenAndServe(newStore(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc, err := DialTCPOpts(1, srv.Addr(), 1, TCPOptions{PoolSize: 1, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	exerciseConn(t, sc)
}

// TestMuxChaosConcurrentRPCs is the demux layer's -race stress: 64
// concurrent RPC workers over a 2-connection pool, wrapped in Flaky with
// injected latency and a 5% failure rate. Every injected failure is
// retried by the caller (the resilient layer's job in production); at the
// end every fragment must read back intact.
func TestMuxChaosConcurrentRPCs(t *testing.T) {
	const (
		workers  = 64
		fragSize = testFragSize
	)
	st, err := server.Format(disk.NewMemDisk(4<<20), server.Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.ListenAndServe(st, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc, err := DialTCPOpts(1, srv.Addr(), 1, TCPOptions{PoolSize: 2, MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlaky(sc)
	defer fl.Close()
	fl.SetLatency(500 * time.Microsecond)
	fl.SetFailureRate(0.05, 42)

	// retry drives an op through injected failures; a real client has the
	// resilient layer doing exactly this.
	retry := func(op func() error) error {
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if err = op(); err == nil || !errors.Is(err, ErrUnavailable) {
				return err
			}
		}
		return err
	}

	payload := func(i int) []byte {
		b := bytes.Repeat([]byte{byte(i)}, 1000)
		b[0] = byte(i >> 8)
		return b
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fid := wire.MakeFID(1, uint64(i))
			err := retry(func() error {
				err := fl.Store(fid, payload(i), false, nil)
				// The transport's transparent retry can double-send a
				// store that already committed; that is success.
				if wire.IsStatus(err, wire.StatusExists) {
					return nil
				}
				return err
			})
			if err != nil {
				errs <- fmt.Errorf("store %d: %w", i, err)
				return
			}
			var got []byte
			err = retry(func() error {
				var rerr error
				got, rerr = fl.Read(fid, 0, 1000)
				return rerr
			})
			if err != nil {
				errs <- fmt.Errorf("read %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, payload(i)) {
				errs <- fmt.Errorf("fragment %d corrupted through the mux", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDecodeIntoRecyclesBodyOnDecodeError is the regression test for a
// pool leak: when a PayloadMessage response arrived with a malformed
// body, decodeInto skipped the recycle (the success path would have
// handed the body to the caller) and the pooled frame body leaked.
func TestDecodeIntoRecyclesBodyOnDecodeError(t *testing.T) {
	const bodyLen = 5000 // a pooled size class (bins start at 4 KB)
	body := wire.GetBuffer(bodyLen)
	// Malformed ReadResponse: the length prefix promises more bytes than
	// the frame holds, so Decode fails partway.
	binary.LittleEndian.PutUint32(body, uint32(bodyLen)*2)

	m := &muxConn{}
	frame := &wire.Response{Op: wire.OpRead, ID: 1, Status: wire.StatusOK, Body: body}
	var rsp wire.ReadResponse
	if err := m.decodeInto(frame, &rsp); err == nil {
		t.Fatal("decode of a malformed body succeeded")
	}

	// Bins are stacks: if decodeInto recycled the body, the next
	// GetBuffer of that class returns the same backing array.
	got := wire.GetBuffer(bodyLen)
	defer wire.PutBuffer(got)
	if &got[0] != &body[0] {
		t.Fatal("decode-error path leaked the pooled frame body")
	}
}
