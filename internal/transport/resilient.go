package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"swarm/internal/wire"
)

// ResilientConfig tunes the retry and circuit-breaker behavior of a
// Resilient connection. The zero value selects the defaults noted on each
// field.
type ResilientConfig struct {
	// MaxRetries is how many times a transiently failing operation is
	// retried (total attempts = MaxRetries+1). Server-originated
	// *wire.StatusError responses are authoritative and never retried.
	// Default 2; negative disables retries.
	MaxRetries int
	// RetryBase is the backoff before the first retry; it doubles per
	// attempt. Default 5ms.
	RetryBase time.Duration
	// RetryMax caps the backoff delay. Default 250ms.
	RetryMax time.Duration
	// BusyRetries is how many times a wire.StatusBusy shed is retried
	// (total attempts = BusyRetries+1). Busy means the server's
	// admission controller rejected the request without executing it,
	// so retrying is always safe — even for non-idempotent operations —
	// and busy responses never count toward the circuit breaker: a
	// shedding server is a live server. Default 8; negative disables.
	BusyRetries int
	// FailThreshold is the number of consecutive transient failures
	// (counting individual attempts) that opens the circuit. Default 4.
	FailThreshold int
	// OpenTimeout is how long an open circuit rejects calls outright
	// before a probe is allowed through. Default 1s.
	OpenTimeout time.Duration
	// Seed seeds the backoff jitter source, so chaos runs are
	// reproducible. 0 uses a fixed default.
	Seed int64

	// Test hooks (package-internal): fake time and sleep.
	now   func() time.Time
	sleep func(time.Duration)
}

func (cfg ResilientConfig) withDefaults() ResilientConfig {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 5 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 250 * time.Millisecond
	}
	if cfg.BusyRetries == 0 {
		cfg.BusyRetries = 8
	}
	if cfg.BusyRetries < 0 {
		cfg.BusyRetries = 0
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 4
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	return cfg
}

// Breaker states. Closed admits calls; open rejects them instantly (a
// dead server must not stall every stripe behind its timeout); half-open
// admits a single Ping probe that decides between the two.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func stateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Health is a snapshot of one server connection's failure-handling state.
type Health struct {
	Server wire.ServerID
	// State is the circuit state: "closed", "open", or "half-open".
	State string
	// Ops counts operations started (not individual attempts).
	Ops int64
	// Failures counts transient attempt failures.
	Failures int64
	// Retries counts retried attempts.
	Retries int64
	// Busy counts wire.StatusBusy sheds observed (each is retried with
	// backoff up to BusyRetries times without tripping the breaker).
	Busy int64
	// Trips counts closed→open transitions.
	Trips int64
	// FastFails counts calls rejected without touching the network
	// because the circuit was open.
	FastFails int64
	// ConsecutiveFailures is the current run of transient failures.
	ConsecutiveFailures int
}

// Resilient wraps a ServerConn with per-operation retries (exponential
// backoff with jitter), transient/permanent error classification, and a
// per-server circuit breaker, so every layer stacked on the transport
// inherits recovery-aware RPC. Safe for concurrent use.
type Resilient struct {
	inner ServerConn
	cfg   ResilientConfig

	mu          sync.Mutex
	state       int        // guarded by mu
	consec      int        // guarded by mu
	openedUntil time.Time  // guarded by mu
	probing     bool       // guarded by mu
	rng         *rand.Rand // guarded by mu

	ops, failures, retries, busy, trips, fastFails int64 // guarded by mu
}

var _ ServerConn = (*Resilient)(nil)

// NewResilient wraps inner with retry and circuit-breaker behavior.
func NewResilient(inner ServerConn, cfg ResilientConfig) *Resilient {
	cfg = cfg.withDefaults()
	return &Resilient{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Inner returns the wrapped connection (for tests and diagnostics).
func (r *Resilient) Inner() ServerConn { return r.inner }

// Health returns a snapshot of the connection's circuit state and
// counters.
func (r *Resilient) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Health{
		Server:              r.inner.ID(),
		State:               stateName(r.state),
		Ops:                 r.ops,
		Failures:            r.failures,
		Retries:             r.retries,
		Busy:                r.busy,
		Trips:               r.trips,
		FastFails:           r.fastFails,
		ConsecutiveFailures: r.consec,
	}
}

// isTransient reports whether err could plausibly succeed on retry. A
// *wire.StatusError is the server's authoritative answer — the request
// was delivered and processed — so it is never retried; everything else
// (ErrUnavailable, socket errors, timeouts) is a transport-level failure.
func isTransient(err error) bool {
	var se *wire.StatusError
	return err != nil && !errors.As(err, &se)
}

// Outcome classes for one attempt, from the retry loop's point of view.
const (
	// outcomeFinal: success or an authoritative server answer — the
	// request was delivered and processed, the answer will not change
	// on retry. Return it to the caller.
	outcomeFinal = iota
	// outcomeTransient: a transport-level failure (socket error,
	// timeout, ErrUnavailable). Retry up to MaxRetries; counts toward
	// the circuit breaker.
	outcomeTransient
	// outcomeBusy: the server's admission controller shed the request
	// before executing it (wire.StatusBusy). Retry with backoff up to
	// BusyRetries; resets the breaker — a shedding server is alive.
	outcomeBusy
)

// classifyStatus maps a wire status to an outcome class. The switch is
// exhaustive over wire.AllStatuses() — enforced by test — so a new
// status cannot be added without an explicit decision here; it can never
// silently default to permanent. The boolean reports whether the status
// has an entry (false only for codes this build does not know).
func classifyStatus(s wire.Status) (int, bool) {
	switch s {
	case wire.StatusOK, wire.StatusNotFound, wire.StatusNoSpace,
		wire.StatusAccess, wire.StatusExists, wire.StatusBadRequest,
		wire.StatusInternal:
		return outcomeFinal, true
	case wire.StatusBusy:
		return outcomeBusy, true
	default:
		// A status this build does not know (a newer server?):
		// authoritative-and-final is the safe reading — retrying an
		// unknown answer could repeat a non-idempotent operation.
		return outcomeFinal, false
	}
}

// classify maps one attempt's error to an outcome class.
func classify(err error) int {
	if err == nil {
		return outcomeFinal
	}
	var se *wire.StatusError
	if errors.As(err, &se) {
		out, _ := classifyStatus(se.Status)
		return out
	}
	return outcomeTransient
}

// admit enforces the circuit breaker before an attempt touches the
// network. In half-open state the first caller sends a Ping probe; its
// outcome closes or re-opens the circuit. Concurrent callers fail fast
// while the probe is in flight.
func (r *Resilient) admit(op string) error {
	r.mu.Lock()
	switch r.state {
	case breakerClosed:
		r.mu.Unlock()
		return nil
	case breakerOpen:
		if r.cfg.now().Before(r.openedUntil) {
			r.fastFails++
			r.mu.Unlock()
			return fmt.Errorf("%w: server %d %s: circuit open, failing fast", ErrUnavailable, r.inner.ID(), op)
		}
		r.state = breakerHalfOpen
	}
	if r.probing {
		r.fastFails++
		r.mu.Unlock()
		return fmt.Errorf("%w: server %d %s: circuit half-open, probe in flight", ErrUnavailable, r.inner.ID(), op)
	}
	r.probing = true
	r.mu.Unlock()

	perr := r.inner.Ping()
	r.mu.Lock()
	r.probing = false
	if isTransient(perr) {
		r.state = breakerOpen
		r.openedUntil = r.cfg.now().Add(r.cfg.OpenTimeout)
		r.mu.Unlock()
		return fmt.Errorf("%w: server %d %s: probe failed: %v", ErrUnavailable, r.inner.ID(), op, perr)
	}
	// The server answered — even an error status proves liveness.
	r.state = breakerClosed
	r.consec = 0
	r.mu.Unlock()
	return nil
}

func (r *Resilient) onSuccess() {
	r.mu.Lock()
	r.consec = 0
	r.state = breakerClosed
	r.mu.Unlock()
}

// onBusy records a shed: the server is alive and answering, so the
// breaker resets exactly as on success — a server protecting itself from
// overload must not read as a dead one (tripping would convert "please
// back off" into a storm of fast-fails and probes).
func (r *Resilient) onBusy() {
	r.mu.Lock()
	r.busy++
	r.consec = 0
	r.state = breakerClosed
	r.mu.Unlock()
}

func (r *Resilient) onFailure() {
	r.mu.Lock()
	r.failures++
	r.consec++
	if r.state == breakerClosed && r.consec >= r.cfg.FailThreshold {
		r.state = breakerOpen
		r.openedUntil = r.cfg.now().Add(r.cfg.OpenTimeout)
		r.trips++
	}
	r.mu.Unlock()
}

// backoff returns the delay before retry number attempt (0-based), using
// exponential growth with jitter in [d/2, d] so synchronized clients
// don't hammer a recovering server in lockstep.
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.cfg.RetryBase << uint(attempt)
	if d <= 0 || d > r.cfg.RetryMax {
		d = r.cfg.RetryMax
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// do runs one logical operation through the breaker and retry loop.
// Transient failures and busy sheds have separate retry budgets: a
// request bounced by an overloaded server should not spend the budget
// reserved for a flaky network, and vice versa.
func (r *Resilient) do(op string, fn func() error) error {
	if err := r.admit(op); err != nil {
		return err
	}
	r.mu.Lock()
	r.ops++
	r.mu.Unlock()
	transient, busy := 0, 0
	for {
		err := fn()
		switch classify(err) {
		case outcomeFinal:
			// Success, or a definitive server response.
			r.onSuccess()
			return err

		case outcomeBusy:
			r.onBusy()
			if busy >= r.cfg.BusyRetries {
				return err
			}
			r.cfg.sleep(r.backoff(busy))
			busy++
			// No re-admit: onBusy just proved the server alive and
			// closed the breaker; probing a shedding server only adds
			// load.

		default: // outcomeTransient
			r.onFailure()
			if transient >= r.cfg.MaxRetries {
				return err
			}
			r.cfg.sleep(r.backoff(transient))
			transient++
			// The circuit may have opened while we were backing off (our
			// own failures or a concurrent caller's).
			if aerr := r.admit(op); aerr != nil {
				return aerr
			}
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
		}
	}
}

// ID implements ServerConn.
func (r *Resilient) ID() wire.ServerID { return r.inner.ID() }

// Store implements ServerConn. Note that a retried store whose first
// attempt committed surfaces as wire.StatusExists; callers already treat
// that as success (the log layer's ship path).
func (r *Resilient) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	return r.do("store", func() error { return r.inner.Store(fid, data, mark, ranges) })
}

// Read implements ServerConn.
func (r *Resilient) Read(fid wire.FID, off, n uint32) ([]byte, error) {
	var out []byte
	err := r.do("read", func() error {
		var err error
		out, err = r.inner.Read(fid, off, n)
		return err
	})
	return out, err
}

// Delete implements ServerConn.
func (r *Resilient) Delete(fid wire.FID) error {
	return r.do("delete", func() error { return r.inner.Delete(fid) })
}

// Prealloc implements ServerConn.
func (r *Resilient) Prealloc(fid wire.FID) error {
	return r.do("prealloc", func() error { return r.inner.Prealloc(fid) })
}

// LastMarked implements ServerConn.
func (r *Resilient) LastMarked(client wire.ClientID) (wire.FID, bool, error) {
	var (
		fid   wire.FID
		found bool
	)
	err := r.do("last-marked", func() error {
		var err error
		fid, found, err = r.inner.LastMarked(client)
		return err
	})
	return fid, found, err
}

// Has implements ServerConn.
func (r *Resilient) Has(fid wire.FID) (uint32, bool, error) {
	var (
		size  uint32
		found bool
	)
	err := r.do("has", func() error {
		var err error
		size, found, err = r.inner.Has(fid)
		return err
	})
	return size, found, err
}

// List implements ServerConn.
func (r *Resilient) List(client wire.ClientID) ([]wire.FID, error) {
	var fids []wire.FID
	err := r.do("list", func() error {
		var err error
		fids, err = r.inner.List(client)
		return err
	})
	return fids, err
}

// ACLCreate implements ServerConn. ACL creation is not idempotent (a
// retry after a lost response would leak an ACL), so transient failures
// are not retried. A StatusBusy shed, however, is retried: busy is
// returned before the handler runs, so no ACL can have been created.
func (r *Resilient) ACLCreate(members []wire.ClientID) (wire.AID, error) {
	if err := r.admit("acl-create"); err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.ops++
	r.mu.Unlock()
	for busy := 0; ; busy++ {
		aid, err := r.inner.ACLCreate(members)
		switch classify(err) {
		case outcomeFinal:
			r.onSuccess()
			return aid, err
		case outcomeBusy:
			r.onBusy()
			if busy >= r.cfg.BusyRetries {
				return aid, err
			}
			r.cfg.sleep(r.backoff(busy))
		default:
			r.onFailure()
			return aid, err
		}
	}
}

// ACLModify implements ServerConn.
func (r *Resilient) ACLModify(aid wire.AID, add, remove []wire.ClientID) error {
	return r.do("acl-modify", func() error { return r.inner.ACLModify(aid, add, remove) })
}

// ACLDelete implements ServerConn.
func (r *Resilient) ACLDelete(aid wire.AID) error {
	return r.do("acl-delete", func() error { return r.inner.ACLDelete(aid) })
}

// Stat implements ServerConn.
func (r *Resilient) Stat() (wire.StatResponse, error) {
	var st wire.StatResponse
	err := r.do("stat", func() error {
		var err error
		st, err = r.inner.Stat()
		return err
	})
	return st, err
}

// Ping implements ServerConn.
func (r *Resilient) Ping() error {
	return r.do("ping", func() error { return r.inner.Ping() })
}

// Close implements ServerConn, bypassing the breaker: releasing local
// resources must work regardless of the server's health.
func (r *Resilient) Close() error { return r.inner.Close() }

// HealthReporter is implemented by connections that expose per-server
// failure-handling state (Resilient, and wrappers that delegate to one).
type HealthReporter interface {
	Health() Health
}

// HealthOf returns health snapshots for every connection that reports
// one, in cluster order.
func HealthOf(conns []ServerConn) []Health {
	var out []Health
	for _, sc := range conns {
		if hr, ok := sc.(HealthReporter); ok {
			out = append(out, hr.Health())
		}
	}
	return out
}
