package bench

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// RunMeta stamps every BENCH_*.json with enough provenance to
// reconstruct the perf trajectory across PRs: which revision produced
// the numbers, when, and on how wide a machine. Without it a directory
// of benchmark files is just unordered numbers.
type RunMeta struct {
	Revision   string `json:"revision"` // git short hash ("unknown" outside a checkout)
	Generated  string `json:"generated"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// NewRunMeta collects the current run's provenance. The git lookup is
// best-effort: benchmarks must not fail because they ran from a
// tarball.
func NewRunMeta() RunMeta {
	m := RunMeta{
		Revision:   "unknown",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			m.Revision = rev
		}
	}
	return m
}
