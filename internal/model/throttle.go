package model

import (
	"sync"
	"time"
)

// Throttle is a token-bucket rate limiter measured in bytes per second.
// It models a serially shared resource such as a disk head, a network
// link, or a CPU: callers Acquire the number of bytes they intend to move
// and are delayed until the resource could have served them.
//
// A nil *Throttle is valid and imposes no limit, so unthrottled
// configurations need no special casing.
type Throttle struct {
	mu    sync.Mutex
	clock Clock
	rate  float64 // bytes per second
	burst float64 // bucket capacity in bytes
	level float64 // current tokens
	last  time.Time

	busy time.Duration // cumulative time the resource spent serving
}

// NewThrottle returns a throttle serving rate bytes/second with the given
// burst capacity in bytes. A burst of at least one service unit (e.g. one
// fragment) keeps the pipeline smooth; smaller bursts serialize harder.
func NewThrottle(clock Clock, rate float64, burst float64) *Throttle {
	if clock == nil {
		clock = WallClock{}
	}
	return &Throttle{
		clock: clock,
		rate:  rate,
		burst: burst,
		level: burst,
		last:  clock.Now(),
	}
}

// Reserve consumes n bytes of the resource and returns how long the
// caller must wait for the resource to have served them. Callers that
// overlap multiple resources can reserve all of them and sleep once for
// the maximum — modeling pipelined stages — while the debited buckets
// still produce contention across concurrent callers.
func (t *Throttle) Reserve(n int) time.Duration {
	if t == nil || n <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	t.level += now.Sub(t.last).Seconds() * t.rate
	if t.level > t.burst {
		t.level = t.burst
	}
	t.last = now
	t.level -= float64(n)
	t.busy += time.Duration(float64(n) / t.rate * float64(time.Second))
	if t.level < 0 {
		return time.Duration(-t.level / t.rate * float64(time.Second))
	}
	return 0
}

// Acquire consumes n bytes of the resource, sleeping as needed so that the
// caller's observed throughput never exceeds the configured rate.
func (t *Throttle) Acquire(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.clock.Sleep(t.Reserve(n))
}

// TryAcquire consumes n bytes if the bucket allows it right now and
// reports whether it did; it never sleeps and never debits on failure.
// A request larger than the whole burst is admitted whenever the bucket
// is full — it goes into debt rather than being unadmittable forever —
// so oversize requests are paced at the long-run rate, not banned.
// This is the admission-control primitive: callers shed (and have the
// client retry) instead of blocking the server on a tenant's quota.
func (t *Throttle) TryAcquire(n int) bool {
	if t == nil || n <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	t.level += now.Sub(t.last).Seconds() * t.rate
	if t.level > t.burst {
		t.level = t.burst
	}
	t.last = now
	need := float64(n)
	if need > t.burst {
		need = t.burst
	}
	if t.level < need {
		return false
	}
	t.level -= float64(n)
	t.busy += time.Duration(float64(n) / t.rate * float64(time.Second))
	return true
}

// Busy reports cumulative service time consumed from this resource. For a
// CPU throttle, Busy/elapsed is the CPU utilization the paper reports for
// the Modified Andrew Benchmark.
func (t *Throttle) Busy() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.busy
}

// Rate returns the configured rate in bytes per second (0 for nil).
func (t *Throttle) Rate() float64 {
	if t == nil {
		return 0
	}
	return t.rate
}

// CPU models a processor as a rate-limited resource plus an accounting of
// busy time. Work is expressed either as bytes processed at a bytes/second
// rate (copying, checksumming, XOR) or directly as compute duration
// (the MAB compile phase).
type CPU struct {
	throttle *Throttle
	clock    Clock

	mu    sync.Mutex
	extra time.Duration // busy time consumed via Compute
}

// NewCPU returns a CPU that processes data at rate bytes/second. A nil
// return is never produced; an unlimited CPU is NewCPU(clock, 0).
func NewCPU(clock Clock, rate float64) *CPU {
	if clock == nil {
		clock = WallClock{}
	}
	c := &CPU{clock: clock}
	if rate > 0 {
		// Burst of 256 KB: large enough not to serialize per-block
		// work, small enough that sustained rates converge quickly.
		c.throttle = NewThrottle(clock, rate, 256<<10)
	}
	return c
}

// Process charges the CPU for handling n bytes of data.
func (c *CPU) Process(n int) {
	if c == nil {
		return
	}
	c.throttle.Acquire(n)
}

// Compute charges the CPU for d of pure computation (sleeps for d).
func (c *CPU) Compute(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	c.extra += d
	c.mu.Unlock()
	c.clock.Sleep(d)
}

// Busy reports total busy time (throttled byte work plus computation).
func (c *CPU) Busy() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	extra := c.extra
	c.mu.Unlock()
	return extra + c.throttle.Busy()
}
