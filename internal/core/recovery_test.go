package core

import (
	"bytes"
	"testing"

	"swarm/internal/wire"
)

// reopen abandons l (simulating a client crash: in-memory state lost, no
// Close) and opens a fresh log over the same servers.
func reopen(t *testing.T, c *cluster, cfg Config) (*Log, *Recovery) {
	t.Helper()
	return c.open(t, cfg)
}

func TestRecoveryFreshLog(t *testing.T) {
	c := newTestCluster(t, 2)
	l, rec := c.open(t, Config{})
	defer l.Close()
	if !rec.Fresh || len(rec.Services) != 0 {
		t.Fatalf("fresh recovery = %+v", rec)
	}
}

func TestRecoveryWithoutCheckpointReplaysFromStart(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	mustAppend(t, l, 7, blockPattern(0, 200))
	if _, err := l.AppendRecord(7, []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(7, []byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close): reopen and check replay.
	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	if rec.Fresh {
		t.Fatal("recovery claims fresh log")
	}
	svc := rec.Service(7)
	if svc.HasCheckpoint {
		t.Fatal("phantom checkpoint")
	}
	// Expect: create record for the block, then r1, then r2 in order.
	var kinds []EntryKind
	var payloads []string
	for _, r := range svc.Records {
		kinds = append(kinds, r.Kind)
		payloads = append(payloads, string(r.Payload))
	}
	if len(svc.Records) != 3 || kinds[0] != EntryCreate || kinds[1] != EntryRecord || kinds[2] != EntryRecord {
		t.Fatalf("records = %v", kinds)
	}
	if payloads[1] != "r1" || payloads[2] != "r2" {
		t.Fatalf("payloads = %v", payloads)
	}
}

func TestRecoveryCheckpointBoundsReplay(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	// Pre-checkpoint state.
	if _, err := l.AppendRecord(7, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteCheckpoint(7, []byte("state@ckpt")); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint records.
	if _, err := l.AppendRecord(7, []byte("new1")); err != nil {
		t.Fatal(err)
	}
	addr := mustAppend(t, l, 7, blockPattern(5, 300))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	svc := rec.Service(7)
	if !svc.HasCheckpoint || string(svc.Checkpoint) != "state@ckpt" {
		t.Fatalf("checkpoint = %q (has=%v)", svc.Checkpoint, svc.HasCheckpoint)
	}
	// "old" must NOT be replayed; "new1" and the block's create must.
	for _, r := range svc.Records {
		if r.Kind == EntryRecord && string(r.Payload) == "old" {
			t.Fatal("pre-checkpoint record replayed")
		}
	}
	var sawNew, sawCreate bool
	for _, r := range svc.Records {
		if r.Kind == EntryRecord && string(r.Payload) == "new1" {
			sawNew = true
		}
		if r.Kind == EntryCreate {
			cr, err := DecodeCreateRecord(r.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if cr.Addr == addr {
				sawCreate = true
			}
		}
	}
	if !sawNew || !sawCreate {
		t.Fatalf("missing replays: new=%v create=%v", sawNew, sawCreate)
	}
	// The recovered log can read the pre-crash block.
	got, err := l2.Read(addr, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockPattern(5, 300)) {
		t.Fatal("pre-crash block corrupted")
	}
}

func TestRecoveryPerServiceCheckpoints(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	if _, err := l.AppendRecord(1, []byte("a-before")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteCheckpoint(1, []byte("A1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(2, []byte("b-early")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(1, []byte("a-mid")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteCheckpoint(2, []byte("B1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(1, []byte("a-after")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(2, []byte("b-after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	l2, rec := reopen(t, c, Config{})
	defer l2.Close()

	s1, s2 := rec.Service(1), rec.Service(2)
	if string(s1.Checkpoint) != "A1" || string(s2.Checkpoint) != "B1" {
		t.Fatalf("checkpoints = %q %q", s1.Checkpoint, s2.Checkpoint)
	}
	got1 := recordStrings(s1.Records)
	got2 := recordStrings(s2.Records)
	want1 := []string{"a-mid", "a-after"}
	want2 := []string{"b-after"}
	if !eqStrings(got1, want1) {
		t.Fatalf("svc1 records = %v, want %v", got1, want1)
	}
	if !eqStrings(got2, want2) {
		t.Fatalf("svc2 records = %v, want %v", got2, want2)
	}
}

func recordStrings(recs []ReplayEntry) []string {
	var out []string
	for _, r := range recs {
		if r.Kind == EntryRecord {
			out = append(out, string(r.Payload))
		}
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecoveryUsageTableRestored(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	addr := mustAppend(t, l, 7, blockPattern(0, 400))
	if _, err := l.WriteCheckpoint(7, []byte("s")); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity to roll forward.
	addr2 := mustAppend(t, l, 7, blockPattern(1, 350))
	if err := l.DeleteBlock(addr, 400, 7); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	wantStripe1, _ := l.usage.Get(l.stripeOf(addr.FID.Seq()))
	wantStripe2, _ := l.usage.Get(l.stripeOf(addr2.FID.Seq()))

	l2, _ := reopen(t, c, Config{})
	defer l2.Close()
	got1, ok1 := l2.usage.Get(l.stripeOf(addr.FID.Seq()))
	got2, ok2 := l2.usage.Get(l.stripeOf(addr2.FID.Seq()))
	if !ok1 || !ok2 {
		t.Fatalf("stripes missing after recovery: %v %v", ok1, ok2)
	}
	if got1.Live != wantStripe1.Live || got1.Total != wantStripe1.Total {
		t.Fatalf("stripe1 usage %+v, want %+v", got1, wantStripe1)
	}
	if got2.Live != wantStripe2.Live || got2.Total != wantStripe2.Total {
		t.Fatalf("stripe2 usage %+v, want %+v", got2, wantStripe2)
	}
}

func TestRecoveryAppendsContinueOnFreshStripe(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	mustAppend(t, l, 7, blockPattern(0, 100))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var maxBefore uint64
	for fid := range l.locations {
		if fid.Seq() > maxBefore {
			maxBefore = fid.Seq()
		}
	}

	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	addr := mustAppend(t, l2, 7, blockPattern(1, 100))
	if addr.FID.Seq() <= maxBefore {
		t.Fatalf("new block at seq %d, old max %d", addr.FID.Seq(), maxBefore)
	}
	if rec.MaxSeq != maxBefore {
		t.Fatalf("MaxSeq = %d, want %d", rec.MaxSeq, maxBefore)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryWithServerDown(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	var addrs []BlockAddr
	for i := 0; i < 40; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 500)))
	}
	if _, err := l.WriteCheckpoint(7, []byte("ck")); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 50; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 500)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	// One server dies; the client crashes; recovery must still find the
	// checkpoint and reconstruct any records/blocks on the dead server.
	c.flaky[2].SetDown(true)
	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	if string(rec.Service(7).Checkpoint) != "ck" {
		t.Fatalf("checkpoint = %q", rec.Service(7).Checkpoint)
	}
	for i, addr := range addrs {
		got, err := l2.Read(addr, 0, 500)
		if err != nil {
			t.Fatalf("read %d with server down: %v", i, err)
		}
		if !bytes.Equal(got, blockPattern(i, 500)) {
			t.Fatalf("read %d mismatch", i)
		}
	}
	c.flaky[2].SetDown(false)
}

func TestRecoveryChainedCheckpoints(t *testing.T) {
	// Multiple checkpoints in sequence: recovery must pick the newest.
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	for i := 0; i < 5; i++ {
		if _, err := l.WriteCheckpoint(7, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	if got := string(rec.Service(7).Checkpoint); got != "e" {
		t.Fatalf("newest checkpoint = %q, want e", got)
	}
}

func TestRecoveryAfterReclaim(t *testing.T) {
	// Cleaned (reclaimed) stripes leave holes in the FID space that
	// recovery must skip without inventing records.
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	for i := 0; i < 60; i++ {
		mustAppend(t, l, 7, blockPattern(i, 600))
	}
	if _, err := l.WriteCheckpoint(7, []byte("ck")); err != nil {
		t.Fatal(err)
	}
	stripes := l.usage.Stripes()
	if err := l.ReclaimStripe(stripes[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	if string(rec.Service(7).Checkpoint) != "ck" {
		t.Fatalf("checkpoint = %q", rec.Service(7).Checkpoint)
	}
	if len(rec.Holes) != 0 {
		t.Fatalf("holes reported for reclaimed stripe: %v", rec.Holes)
	}
}

func TestRecoverySurvivesTornTailFragment(t *testing.T) {
	// A fragment whose store never completed (client died mid-pipeline)
	// simply doesn't exist; recovery reports the tail as holes only when
	// a sibling proves the stripe existed.
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	mustAppend(t, l, 7, blockPattern(0, 300))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Manually delete one data fragment to simulate a torn stripe, then
	// also delete the parity so reconstruction fails.
	var dataFID, parityFID wire.FID
	found := false
	for fid := range l.locations {
		h, _, err := l.fetchDirect(fid)
		if err != nil {
			continue
		}
		if h.Kind == FragData && h.DataLen > 0 {
			dataFID = fid
			parityFID = h.MemberFID(int(h.StripeID % uint64(h.Width)))
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no data fragment found")
	}
	if err := l.place.Conn(l.locations[dataFID]).Delete(dataFID); err != nil {
		t.Fatal(err)
	}
	if err := l.place.Conn(l.locations[parityFID]).Delete(parityFID); err != nil {
		t.Fatal(err)
	}

	l2, rec := reopen(t, c, Config{})
	defer l2.Close()
	foundHole := false
	for _, h := range rec.Holes {
		if h == dataFID {
			foundHole = true
		}
	}
	if !foundHole {
		t.Fatalf("missing data fragment not reported as hole: %v", rec.Holes)
	}
}
