package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/wire"
)

// connWorkers bounds the per-connection worker pool: how many requests
// from one client connection may be in the store concurrently. With the
// client multiplexing RPCs over each connection, a slow disk op must not
// head-of-line-block the frames queued behind it. Sized to twice the
// client transport's default MaxInFlight (8) so even a single
// deep-configured connection can keep the store's group-commit batches
// full: stores admitted concurrently share fsyncs (DESIGN.md §3.10), so
// worker depth directly sets the achievable commit batch size.
const connWorkers = 16

// TCPServer serves the wire protocol over TCP, one goroutine per
// connection plus a bounded worker pool per connection. Responses to one
// connection are serialized by a write lock; requests — from the same or
// different connections — proceed concurrently against the store.
type TCPServer struct {
	store *Store
	ln    net.Listener
	log   *log.Logger

	handleDelay atomic.Int64 // nanoseconds; bench/test hook

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu

	wg sync.WaitGroup
}

// ListenAndServe starts a TCP server for store on addr ("host:port";
// ":0" picks a free port). The returned server is already accepting.
func ListenAndServe(store *Store, addr string, logger *log.Logger) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return Serve(store, ln, logger), nil
}

// Serve starts a server for store on an existing listener (which the
// server takes ownership of). It lets tests and benchmarks interpose on
// the transport — e.g. wrap accepted connections with simulated RTT.
func Serve(store *Store, ln net.Listener, logger *log.Logger) *TCPServer {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &TCPServer{
		store: store,
		ln:    ln,
		log:   logger,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Store returns the underlying fragment store.
func (s *TCPServer) Store() *Store { return s.store }

// SetHandleDelay adds an artificial delay before each request is handled
// (0 disables). Benchmarks and tests use it to model slow disks.
func (s *TCPServer) SetHandleDelay(d time.Duration) { s.handleDelay.Store(int64(d)) }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connWriter serializes response frames onto one connection. Workers
// finish requests in completion order, not arrival order; the client
// demultiplexes by request ID.
type connWriter struct {
	c net.Conn
	// mu serializes response frames onto c; writing under it is the
	// mutex's entire purpose. swarmlint:io-mutex
	mu     sync.Mutex
	failed atomic.Bool
}

func (w *connWriter) write(status wire.Status, op wire.Op, id uint64, msg wire.Message, errText string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if status == wire.StatusOK {
		return wire.WriteResponse(w.c, op, id, msg)
	}
	return wire.WriteErrorResponse(w.c, op, id, status, errText)
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := wire.NewConnReader(conn)
	cw := &connWriter{c: conn}
	jobs := make(chan *wire.Request, connWorkers)
	var workers sync.WaitGroup
	for i := 0; i < connWorkers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for req := range jobs {
				s.handleRequest(conn, cw, req)
			}
		}()
	}
	for {
		req, err := wire.ReadRequestFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.log.Printf("read request: %v", err)
			}
			break
		}
		jobs <- req
		if cw.failed.Load() {
			break
		}
	}
	close(jobs)
	workers.Wait()
}

func (s *TCPServer) handleRequest(conn net.Conn, cw *connWriter, req *wire.Request) {
	if d := time.Duration(s.handleDelay.Load()); d > 0 {
		time.Sleep(d)
	}
	status, msg := s.store.Handle(req.Client, req.Op, req.Body)
	werr := cw.write(status, req.Op, req.ID, msg, ErrText(msg))
	// The request body (and for store ops the fragment payload aliasing
	// it) is dead once Handle returned; a ReadResponse payload is dead
	// once the response frame is on the wire. Recycle the exclusively
	// owned pooled buffers; a reference-counted payload (a read-cache
	// extent spliced zero-copy into the frame) instead has its reference
	// released — the cache may still be serving it to other readers.
	wire.PutBuffer(req.Body)
	if status == wire.StatusOK {
		switch m := msg.(type) {
		case wire.PayloadReleaser:
			m.ReleasePayload()
		case wire.PayloadMessage:
			wire.PutBuffer(m.Payload())
		}
	}
	if werr != nil && !cw.failed.Swap(true) {
		s.log.Printf("write response: %v", werr)
		conn.Close() // unblocks the connection's frame reader
	}
}

// Close stops accepting, closes all connections, and waits for the
// connection handlers to finish.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
