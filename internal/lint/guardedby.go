package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces "guarded by <mu>" field comments: a struct field
// documented as guarded may only be accessed inside a function that
// lexically locks that mutex (x.<mu>.Lock() or x.<mu>.RLock(), deferred
// or not), is annotated swarmlint:locked, or follows the tree's older
// xxxLocked naming convention — both assert every caller holds the lock
// (the waitStoring/sealCurrentLocked pattern in the server store and
// client log).
//
// Two accesses are exempt without annotation:
//
//   - constructor initialization: accesses through a function-local
//     variable whose declaration initializes it from a composite
//     literal — the value is unpublished, so no lock can be needed;
//   - the lock statements themselves and accesses to the guard mutex.
//
// The check is lexical: it matches the mutex by its trailing name (the
// "mu" of s.mu), not by aliasing analysis, and it trusts that a lock
// appearing anywhere in the function covers the accesses. It exists to
// catch the easy, common failure — a new method touching guarded state
// with no locking at all — not to re-prove the race detector's job.
type GuardedBy struct{}

// NewGuardedBy returns the guarded-field analyzer.
func NewGuardedBy() *GuardedBy { return &GuardedBy{} }

// Name implements Analyzer.
func (*GuardedBy) Name() string { return "guardedby" }

// Doc implements Analyzer.
func (*GuardedBy) Doc() string {
	return `fields commented "guarded by <mu>" are only touched under that mutex or in swarmlint:locked functions`
}

// Run implements Analyzer.
func (g *GuardedBy) Run(p *Package) []Diagnostic {
	ann := p.Annotations()
	var diags []Diagnostic
	seen := make(map[string]bool) // dedupe file:line:field
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			guard := ann.fieldGuard(fld)
			if guard == "" {
				return true
			}
			if g.accessOK(p, sel, guard) {
				return true
			}
			pos := p.Fset.Position(sel.Sel.Pos())
			key := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, fld.Name())
			if seen[key] {
				return true
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Message:  fmt.Sprintf("field %q (guarded by %s) accessed without locking %s; lock it, or annotate the function with %s if callers hold it", fld.Name(), guard, guard, DirectiveLocked),
				Analyzer: g.Name(),
			})
			return true
		})
	}
	return diags
}

// accessOK reports whether the guarded-field access at sel is covered
// by a lock, an annotation, or an exemption.
func (g *GuardedBy) accessOK(p *Package, sel *ast.SelectorExpr, guard string) bool {
	// Accessing the guard through itself (s.mu.Lock() where mu is also a
	// guarded field of a parent struct) never needs the lock held.
	if sel.Sel.Name == guard {
		return true
	}
	ann := p.Annotations()
	for fn := p.EnclosingFunc(sel); fn != nil; fn = p.EnclosingFunc(fn) {
		if ann.funcHas(p.Info, fn, DirectiveLocked) {
			return true
		}
		// The tree's naming convention predates the annotation: a
		// xxxLocked method is documented as called with the lock held.
		if fd, ok := fn.(*ast.FuncDecl); ok && strings.HasSuffix(fd.Name.Name, "Locked") {
			return true
		}
		if body := FuncBody(fn); body != nil && locksMutex(body, guard) {
			return true
		}
	}
	if p.EnclosingFunc(sel) == nil {
		return true // package-level composite literal: initialization
	}
	return constructorAccess(p, sel)
}

// locksMutex reports whether body contains a call <path>.<guard>.Lock()
// or .RLock(), plain or deferred. The mutex is matched by its final
// name component.
func locksMutex(body *ast.BlockStmt, guard string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "RLock") {
			return true
		}
		if finalName(fun.X) == guard {
			found = true
			return false
		}
		return true
	})
	return found
}

// finalName returns the last identifier of an expression path ("mu" for
// s.mu, (&s.mu), or a bare mu), or "".
func finalName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return finalName(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return finalName(e.X)
		}
	case *ast.StarExpr:
		return finalName(e.X)
	}
	return ""
}

// constructorAccess reports whether sel's base is a function-local
// variable initialized from a composite literal in the same function —
// a value still private to its constructor. Shared by guardedby and
// atomicmix: both disciplines are void before the value is published.
func constructorAccess(p *Package, sel *ast.SelectorExpr) bool {
	root := ast.Unparen(sel.X)
	for {
		if inner, ok := root.(*ast.SelectorExpr); ok {
			root = ast.Unparen(inner.X)
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		v, ok = p.Info.Defs[id].(*types.Var)
		if !ok {
			return false
		}
	}
	owner := p.EnclosingFunc(sel)
	body := FuncBody(owner)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, l := range n.Lhs {
				lid, ok := l.(*ast.Ident)
				if !ok || p.Info.Defs[lid] != v || i >= len(n.Rhs) {
					continue
				}
				if isCompositeInit(n.Rhs[i]) {
					found = true
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if p.Info.Defs[name] != v || i >= len(n.Values) {
					continue
				}
				if isCompositeInit(n.Values[i]) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isCompositeInit reports whether e is a composite literal, optionally
// behind & or new-style helpers we can see through.
func isCompositeInit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}
