// Rebalance benchmark: what an elastic-membership drain costs the
// foreground workload. A cluster writes at steady state, then a new
// server joins, an original is drained, and the same workload runs
// again while the background rebalancer migrates every fragment off the
// draining member. The figure of merit is the ratio of drain-phase to
// steady-phase append throughput — the paper's premise is that clients
// drive all data movement, so a drain must coexist with foreground I/O
// rather than pausing it. Per-request server latency is injected
// through transport.Flaky so both phases are network-bound and the
// ratio is stable on loaded hosts and under the race detector.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/erasure"
	"swarm/internal/rebalance"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// RebalanceConfig parameterizes the drain benchmark.
type RebalanceConfig struct {
	// Servers is the initial cluster size (a new one joins mid-run).
	// Default 6.
	Servers int
	// Blocks per phase. Default 160.
	Blocks int
	// BlockSize of each append. Default 1024.
	BlockSize int
	// Latency is the injected per-request server latency. Default 2ms.
	Latency time.Duration
}

// RebalanceResult records both phases of one run.
type RebalanceResult struct {
	Servers   int    `json:"servers"`
	Width     int    `json:"width"`
	Parity    int    `json:"parity"`
	Blocks    int    `json:"blocks"`
	BlockSize int    `json:"block_size"`
	LatencyNS int64  `json:"latency_ns"`
	Source    uint32 `json:"drained_server"`

	SteadyNS    int64   `json:"steady_ns"`
	DrainNS     int64   `json:"drain_ns"`
	SteadyMBps  float64 `json:"steady_mbps"`
	DrainMBps   float64 `json:"drain_mbps"`
	Ratio       float64 `json:"drain_over_steady"`
	Moved       int     `json:"moved_fragments"`
	MovedBytes  int64   `json:"moved_bytes"`
	RebalanceNS int64   `json:"rebalance_ns"`
	FinalEpoch  uint32  `json:"final_epoch"`
}

// RunRebalanceBench measures foreground append throughput before and
// during an elastic drain: steady state on the initial cluster, then a
// join + drain with the rebalancer running in the background.
func RunRebalanceBench(cfg RebalanceConfig) (RebalanceResult, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 6
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 160
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	if cfg.Latency == 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	const fragSize = 4096
	client := wire.ClientID(1)
	width, parity := 6, 2
	if cfg.Servers < width {
		width = cfg.Servers
		parity = 1
	}

	newServer := func(id wire.ServerID) (*transport.Flaky, error) {
		st, err := server.Format(disk.NewMemDisk(16<<20), server.Config{FragmentSize: fragSize})
		if err != nil {
			return nil, fmt.Errorf("format server %d: %w", id, err)
		}
		fl := transport.NewFlaky(transport.NewLocal(id, st, client))
		fl.SetLatency(cfg.Latency)
		return fl, nil
	}
	conns := make([]transport.ServerConn, cfg.Servers)
	for i := range conns {
		fl, err := newServer(wire.ServerID(i + 1))
		if err != nil {
			return RebalanceResult{}, err
		}
		conns[i] = fl
	}
	kind := erasure.KindXOR
	if parity > 1 {
		kind = erasure.KindRS
	}
	log, _, err := core.Open(core.Config{
		Client: client, Servers: conns, FragmentSize: fragSize,
		Width: width, ParityShards: parity, Codec: kind,
	})
	if err != nil {
		return RebalanceResult{}, err
	}
	defer log.Close()

	res := RebalanceResult{
		Servers: cfg.Servers, Width: width, Parity: parity,
		Blocks: cfg.Blocks, BlockSize: cfg.BlockSize,
		LatencyNS: cfg.Latency.Nanoseconds(), Source: 1,
	}
	block := make([]byte, cfg.BlockSize)
	appendPhase := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < cfg.Blocks; i++ {
			if _, err := log.AppendBlock(7, block, nil); err != nil {
				return 0, err
			}
		}
		if err := log.Sync(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// Phase 1: steady state.
	steady, err := appendPhase()
	if err != nil {
		return res, err
	}

	// Phase 2: a new server joins, an original drains, and the same
	// workload runs while the rebalancer empties the draining member.
	joiner, err := newServer(wire.ServerID(cfg.Servers + 1))
	if err != nil {
		return res, err
	}
	if _, err := log.AddServer(joiner, 0); err != nil {
		return res, err
	}
	source := wire.ServerID(1)
	if _, err := log.DrainServer(source); err != nil {
		return res, err
	}
	reb := rebalance.New(log, source, rebalance.Options{})
	rebStart := time.Now()
	rebDone := make(chan error, 1)
	go func() { rebDone <- reb.Run(context.Background()) }()
	drain, err := appendPhase()
	if err != nil {
		return res, err
	}
	if err := <-rebDone; err != nil {
		return res, fmt.Errorf("rebalance: %w", err)
	}
	rebTime := time.Since(rebStart)
	if left, err := conns[source-1].List(client); err != nil || len(left) != 0 {
		return res, fmt.Errorf("drained server still holds %d fragments (%v)", len(left), err)
	}

	st := reb.Stats()
	useful := float64(cfg.Blocks * cfg.BlockSize)
	res.SteadyNS = steady.Nanoseconds()
	res.DrainNS = drain.Nanoseconds()
	res.SteadyMBps = useful / steady.Seconds() / (1 << 20)
	res.DrainMBps = useful / drain.Seconds() / (1 << 20)
	res.Ratio = res.DrainMBps / res.SteadyMBps
	res.Moved = st.Moved
	res.MovedBytes = st.Bytes
	res.RebalanceNS = rebTime.Nanoseconds()
	res.FinalEpoch = log.PlacementEpoch()
	return res, nil
}

// PrintRebalanceResult renders the drain-cost table.
func PrintRebalanceResult(w io.Writer, r RebalanceResult) {
	fmt.Fprintf(w, "Elastic drain — foreground append throughput while rebalancing\n")
	fmt.Fprintf(w, "%-22s %-10s %-10s %-8s %-12s %s\n",
		"cluster", "steady", "draining", "ratio", "moved", "rebalance time")
	fmt.Fprintf(w, "%d+1 srv RS(%d,%d)%-3s %-10s %-10s %-8.2f %-12s %v\n",
		r.Servers, r.Width-r.Parity, r.Parity, "",
		fmt.Sprintf("%.2fMB/s", r.SteadyMBps), fmt.Sprintf("%.2fMB/s", r.DrainMBps),
		r.Ratio, fmt.Sprintf("%dfr/%dKB", r.Moved, r.MovedBytes>>10),
		time.Duration(r.RebalanceNS).Round(time.Millisecond))
	fmt.Fprintln(w)
}

// WriteRebalanceJSON writes the machine-readable benchmark record
// (consumed by CI and tracked across PRs in EXPERIMENTS.md).
func WriteRebalanceJSON(path string, r RebalanceResult) error {
	doc := struct {
		Figure  string          `json:"figure"`
		Meta    RunMeta         `json:"meta"`
		Result  RebalanceResult `json:"result"`
	}{
		Figure:  "rebalance",
		Meta:    NewRunMeta(),
		Result:  r,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
