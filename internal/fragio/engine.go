// Package fragio is the client-side fragment I/O engine: one shared
// machine for every layer that fetches fragments from storage servers —
// remote reads, stripe reconstruction, server rebuild, recovery scans,
// and the cleaner. Swarm's self-hosting design (§2.3.3) puts all of that
// work on clients, and before this package existed each layer
// re-implemented its own fetch loop and issued requests one server at a
// time. The engine owns:
//
//   - per-server request queues with bounded concurrency, so a burst of
//     fetches neither serializes behind one round trip nor floods a
//     single server;
//   - parallel scatter-gather fetch of stripe members (Gather), turning
//     width-W reconstruction from W sequential round trips into one
//     fan-out bounded by the slowest surviving member;
//   - singleflight deduplication keyed by FID (Single, Locate), so N
//     concurrent readers of the same lost fragment pay for one
//     reconstruction and one broadcast discovery, not N;
//   - a unified store/retry policy that composes with the resilient
//     transport layer instead of duplicating it: a connection that
//     already retries internally is never retried again by the engine.
//
// The engine sits below internal/core (which owns the log format and
// reconstruction math) and above internal/transport (which owns the wire
// protocol and per-connection resilience). It deliberately knows nothing
// about core's header encoding: callers describe the frame layout
// through the Format interface.
package fragio

import (
	"errors"
	"fmt"
	"sync"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// ErrNotFound is returned by Locate when no reachable server stores the
// fragment.
var ErrNotFound = errors.New("fragio: fragment not found on any server")

// ErrSkipped marks a GatherK member that was not waited for because the
// quorum had already been reached. It is not a failure: the member was
// simply unnecessary.
var ErrSkipped = errors.New("fragio: member skipped, gather quorum reached")

// Format describes the fragment frame layout to the engine, so it can
// fetch and validate whole fragments without importing the log format
// (fragio must stay below core in the dependency order).
type Format interface {
	// HeaderSize is the fixed encoded header length at offset 0.
	HeaderSize() uint32
	// Parse decodes and validates hdr as the header of fragment fid,
	// returning the decoded header (handed back to the caller untouched)
	// and the payload length to fetch.
	Parse(fid wire.FID, hdr []byte) (decoded any, payloadLen uint32, err error)
	// Verify checks payload integrity against the decoded header.
	Verify(decoded any, payload []byte) error
}

// Options tunes an Engine. The zero value selects the defaults noted on
// each field.
type Options struct {
	// Format describes the fragment frame; required for Fetch/Gather.
	Format Format
	// StoreDepth bounds concurrent stores per server — the write
	// pipeline depth (§2.1.2: one fragment crosses the network while the
	// server writes the previous one). Default 2.
	StoreDepth int
	// FetchDepth bounds concurrent fetches per server, so scatter-gather
	// bursts from reconstruction, the cleaner, and readahead don't flood
	// one server. Default 4.
	FetchDepth int
	// MaxInFlight, when > 0, caps combined concurrent operations (stores
	// + fetches) per server. It exists to match the transport layer's
	// per-connection multiplexing budget (transport.TCPOptions.MaxInFlight
	// × pool size): capping here keeps requests queued client-side, where
	// they can be reordered and cancelled, instead of deep in socket
	// buffers. 0 leaves stores and fetches bounded only by their own
	// depths.
	MaxInFlight int
}

// Stats counts engine activity. Retrieve a snapshot with Engine.Stats.
type Stats struct {
	// Reads counts raw byte-range reads issued (ReadAt).
	Reads int64
	// Fetches counts whole-fragment fetches issued (Fetch).
	Fetches int64
	// Gathers counts scatter-gather fan-outs (Gather calls).
	Gathers int64
	// GatherMembers counts stripe members fetched across all Gathers.
	GatherMembers int64
	// Stores counts store operations issued.
	Stores int64
	// StoreRetries counts stores the engine retried itself (only ever on
	// connections without their own resilience layer).
	StoreRetries int64
	// Broadcasts counts broadcast discoveries actually performed.
	Broadcasts int64
	// SharedFlights counts Single calls that joined an in-flight
	// execution instead of running their own.
	SharedFlights int64
	// SharedLocates counts Locate calls deduplicated the same way.
	SharedLocates int64
	// KGathers counts quorum fan-outs (GatherK calls that could return
	// early).
	KGathers int64
	// GatherStragglers counts members a GatherK abandoned after its
	// quorum was reached (their fetches complete in the background and
	// their buffers are recycled).
	GatherStragglers int64
}

// Engine is the fragment I/O engine for one client over one cluster.
// All methods are safe for concurrent use, including the membership
// mutations AddServer/RemoveServer: the server set is read under the
// engine mutex, while blocking work (semaphore waits, I/O) always
// happens outside it, so an in-flight gather racing a removal completes
// against the channels it captured.
type Engine struct {
	format     Format
	storeDepth int
	fetchDepth int
	opDepth    int // 0 = no combined cap

	flights singleflight // reconstruction and other per-FID work
	locates singleflight // broadcast discovery

	mu        sync.Mutex
	servers   []transport.ServerConn                 // guarded by mu
	byID      map[wire.ServerID]transport.ServerConn // guarded by mu
	storeSems map[wire.ServerID]chan struct{}        // guarded by mu
	fetchSems map[wire.ServerID]chan struct{}        // guarded by mu
	opSems    map[wire.ServerID]chan struct{}        // guarded by mu; nil when opDepth == 0
	inflight  int                                    // dispatched async stores not yet complete; guarded by mu
	cond      *sync.Cond
	stats     Stats // guarded by mu
}

// New builds an engine over the cluster's connections.
func New(servers []transport.ServerConn, opts Options) *Engine {
	if opts.StoreDepth <= 0 {
		opts.StoreDepth = 2
	}
	if opts.FetchDepth <= 0 {
		opts.FetchDepth = 4
	}
	e := &Engine{
		format:     opts.Format,
		storeDepth: opts.StoreDepth,
		fetchDepth: opts.FetchDepth,
		opDepth:    opts.MaxInFlight,
		byID:       make(map[wire.ServerID]transport.ServerConn, len(servers)),
		storeSems:  make(map[wire.ServerID]chan struct{}, len(servers)),
		fetchSems:  make(map[wire.ServerID]chan struct{}, len(servers)),
	}
	e.cond = sync.NewCond(&e.mu)
	e.flights.init()
	e.locates.init()
	if opts.MaxInFlight > 0 {
		e.opSems = make(map[wire.ServerID]chan struct{}, len(servers))
	}
	for _, sc := range servers {
		e.servers = append(e.servers, sc)
		e.addLocked(sc)
	}
	return e
}

// addLocked installs sc's lookup entry and semaphores.
func (e *Engine) addLocked(sc transport.ServerConn) {
	id := sc.ID()
	e.byID[id] = sc
	e.storeSems[id] = make(chan struct{}, e.storeDepth)
	e.fetchSems[id] = make(chan struct{}, e.fetchDepth)
	if e.opSems != nil {
		e.opSems[id] = make(chan struct{}, e.opDepth)
	}
}

// AddServer admits a new server to the engine: it becomes a valid
// store/fetch target with fresh bounded queues and joins the broadcast
// set. Adding an ID that is already present is an error.
func (e *Engine) AddServer(sc transport.ServerConn) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.byID[sc.ID()]; dup {
		return fmt.Errorf("fragio: server %d already in engine", sc.ID()) // swarmlint:classified (configuration error, not an RPC outcome)
	}
	e.servers = append(append([]transport.ServerConn(nil), e.servers...), sc)
	e.addLocked(sc)
	return nil
}

// RemoveServer drops a server from the engine. Operations already in
// flight against it run to completion on the channels they captured;
// new fetches naming the ID miss the lookup and fall back to broadcast
// discovery over the remaining servers. Unknown IDs are a no-op.
func (e *Engine) RemoveServer(id wire.ServerID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.byID[id]; !ok {
		return
	}
	next := make([]transport.ServerConn, 0, len(e.servers)-1)
	for _, sc := range e.servers {
		if sc.ID() != id {
			next = append(next, sc)
		}
	}
	e.servers = next
	delete(e.byID, id)
	delete(e.storeSems, id)
	delete(e.fetchSems, id)
	if e.opSems != nil {
		delete(e.opSems, id)
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Conn returns the connection for a server ID, or nil if the server is
// not (or no longer) in the configuration.
func (e *Engine) Conn(id wire.ServerID) transport.ServerConn {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.byID[id]
}

func (e *Engine) acquireFetch(id wire.ServerID) func() {
	e.mu.Lock()
	sem, ok := e.fetchSems[id]
	e.mu.Unlock()
	if !ok {
		// Unknown or just-removed server: no queue to respect. The fetch
		// itself will fail or succeed on the connection's own terms.
		return func() {}
	}
	sem <- struct{}{}
	releaseOp := e.acquireOp(id)
	return func() { releaseOp(); <-sem }
}

// acquireOp takes a slot in the server's combined in-flight cap (a no-op
// when MaxInFlight is unset). Always acquired after the store/fetch
// depth semaphore — one consistent order, so the two levels cannot
// deadlock against each other.
func (e *Engine) acquireOp(id wire.ServerID) func() {
	e.mu.Lock()
	sem, ok := e.opSems[id]
	e.mu.Unlock()
	if !ok {
		return func() {}
	}
	sem <- struct{}{}
	return func() { <-sem }
}

func (e *Engine) bump(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// ------------------------------------------------------------- fetching

// ReadAt reads n bytes at off of fragment fid from conn, through the
// server's bounded fetch queue.
func (e *Engine) ReadAt(conn transport.ServerConn, fid wire.FID, off, n uint32) ([]byte, error) {
	release := e.acquireFetch(conn.ID())
	defer release()
	e.bump(func(s *Stats) { s.Reads++ })
	return conn.Read(fid, off, n)
}

// Fetch reads and validates the whole fragment fid from conn: header,
// payload, and integrity check, through the server's bounded fetch
// queue. It returns the Format-decoded header alongside the payload.
func (e *Engine) Fetch(conn transport.ServerConn, fid wire.FID) (any, []byte, error) {
	release := e.acquireFetch(conn.ID())
	defer release()
	e.bump(func(s *Stats) { s.Fetches++ })
	hdrBytes, err := conn.Read(fid, 0, e.format.HeaderSize())
	if err != nil {
		return nil, nil, err
	}
	decoded, payloadLen, err := e.format.Parse(fid, hdrBytes)
	// Parse decodes into its own representation (the Format contract),
	// so the raw header buffer can go back to the transport's pool.
	wire.PutBuffer(hdrBytes)
	if err != nil {
		return nil, nil, err
	}
	if payloadLen == 0 {
		return decoded, nil, nil
	}
	payload, err := conn.Read(fid, e.format.HeaderSize(), payloadLen)
	if err != nil {
		return nil, nil, err
	}
	if err := e.format.Verify(decoded, payload); err != nil {
		// The pool-owned payload is not returned on this path; recycle it
		// instead of leaking it to the GC.
		wire.PutBuffer(payload)
		return nil, nil, err
	}
	return decoded, payload, nil
}

// Member names one fragment to gather: its FID and the server believed
// to hold it (the stripe group from a sibling header, or a recorded
// location). A server outside the configuration — including the zero
// value for "unknown" — sends the fetch straight to broadcast discovery.
type Member struct {
	FID    wire.FID
	Server wire.ServerID
}

// Result is one gathered fragment. From is the server that actually
// supplied it (it may differ from Member.Server after a broadcast
// fallback); Decoded is the Format-decoded header.
type Result struct {
	Member
	From    wire.ServerID
	Decoded any
	Payload []byte
	Err     error
}

// Gather fetches all members concurrently — the scatter-gather fan-out
// that reconstruction, rebuild, and the cleaner are built on. Each
// member respects its server's bounded fetch queue; a member whose
// preferred server fails it falls back to broadcast discovery. Gather
// always returns one Result per member, in order; callers decide whether
// individual failures are fatal (reconstruction needs every survivor,
// the cleaner tolerates absent members).
func (e *Engine) Gather(members []Member) []Result {
	e.bump(func(s *Stats) {
		s.Gathers++
		s.GatherMembers += int64(len(members))
	})
	out := make([]Result, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			out[i] = e.fetchMember(m)
		}(i, m)
	}
	wg.Wait()
	return out
}

// GatherK fetches members concurrently and returns as soon as k of them
// have succeeded — the erasure-coded read path, where any k of a
// stripe's members suffice and waiting for the rest only adds the
// slowest servers' latency. The returned slice always has one Result
// per member, in order: members not waited for carry Err == ErrSkipped.
// Fetches already in flight when the quorum lands keep running in the
// background; a drainer recycles their payload buffers, so callers must
// treat only the returned Results' payloads as theirs to release.
// When k ≥ len(members) this is exactly Gather.
func (e *Engine) GatherK(members []Member, k int) []Result {
	if k >= len(members) {
		return e.Gather(members)
	}
	e.bump(func(s *Stats) {
		s.Gathers++
		s.KGathers++
		s.GatherMembers += int64(len(members))
	})
	type indexed struct {
		i int
		r Result
	}
	ch := make(chan indexed, len(members))
	for i, m := range members {
		go func(i int, m Member) {
			ch <- indexed{i, e.fetchMember(m)}
		}(i, m)
	}
	out := make([]Result, len(members))
	for i, m := range members {
		out[i] = Result{Member: m, Err: ErrSkipped}
	}
	succeeded, received := 0, 0
	for received < len(members) && succeeded < k {
		x := <-ch
		received++
		out[x.i] = x.r
		if x.r.Err == nil {
			succeeded++
		}
	}
	if remaining := len(members) - received; remaining > 0 {
		e.bump(func(s *Stats) { s.GatherStragglers += int64(remaining) })
		// Stragglers' pooled buffers must not leak: drain them off the
		// channel as they land and recycle. The channel is buffered to
		// len(members), so the fetch goroutines never block either way.
		go func() {
			for j := 0; j < remaining; j++ {
				x := <-ch
				wire.PutBuffer(x.r.Payload)
			}
		}()
	}
	return out
}

// fetchMember fetches one gathered fragment: preferred server first,
// broadcast discovery as the fallback.
func (e *Engine) fetchMember(m Member) Result {
	res := Result{Member: m}
	if conn := e.Conn(m.Server); conn != nil {
		res.Decoded, res.Payload, res.Err = e.Fetch(conn, m.FID)
		if res.Err == nil {
			res.From = m.Server
			return res
		}
	}
	conn, _, err := e.Locate(m.FID)
	if err != nil {
		if res.Err == nil {
			res.Err = err
		}
		return res
	}
	res.Decoded, res.Payload, res.Err = e.Fetch(conn, m.FID)
	if res.Err == nil {
		res.From = conn.ID()
	}
	return res
}

// Locate finds a server holding fid by broadcasting to the cluster —
// the self-hosting discovery of §2.3.3. Concurrent Locate calls for the
// same FID share one broadcast; shared reports whether this caller
// joined an in-flight discovery rather than performing its own.
func (e *Engine) Locate(fid wire.FID) (conn transport.ServerConn, shared bool, err error) {
	v, shared, err := e.locates.do(fid, func() (any, error) {
		e.mu.Lock()
		servers := append([]transport.ServerConn(nil), e.servers...)
		e.stats.Broadcasts++
		e.mu.Unlock()
		found := transport.Broadcast(servers, fid)
		if len(found) == 0 {
			return nil, fmt.Errorf("%w: %v", ErrNotFound, fid)
		}
		return found[0], nil // swarmlint:placement-ok (any holder serves a broadcast discovery; no slot is being resolved)
	})
	if shared {
		e.bump(func(s *Stats) { s.SharedLocates++ })
	}
	if err != nil {
		return nil, shared, err
	}
	return v.(transport.ServerConn), shared, nil
}

// Single runs fn once per concurrently-requested FID: callers that
// arrive while fn is in flight wait for and share its result instead of
// executing their own copy. Reconstruction uses this so N concurrent
// readers of the same lost fragment pay one stripe fan-out.
func (e *Engine) Single(fid wire.FID, fn func() (any, error)) (v any, shared bool, err error) {
	v, shared, err = e.flights.do(fid, fn)
	if shared {
		e.bump(func(s *Stats) { s.SharedFlights++ })
	}
	return v, shared, err
}

// -------------------------------------------------------------- storing

// selfRetrying reports whether conn carries its own retry/backoff layer
// (the resilient transport); the engine must not stack retries on top of
// it — that would multiply attempts against a down server.
func selfRetrying(conn transport.ServerConn) bool {
	_, ok := conn.(transport.HealthReporter)
	return ok
}

// transient mirrors the resilient layer's classification: a
// *wire.StatusError is the server's authoritative answer and is never
// worth retrying; anything else is a transport-level failure that might
// succeed on a second attempt.
func transient(err error) bool {
	var se *wire.StatusError
	return err != nil && !errors.As(err, &se)
}

// Store writes a fragment with the engine's unified retry policy: one
// extra attempt for transient failures on bare connections (a response
// lost after the server committed surfaces as StatusExists on the
// retry), no engine-level retries when the connection already has a
// resilience layer. StatusExists maps to success either way — the
// fragment is committed, which is what the caller asked for.
func (e *Engine) Store(conn transport.ServerConn, fid wire.FID, frame []byte, mark bool, ranges []wire.ACLRange) error {
	e.bump(func(s *Stats) { s.Stores++ })
	err := conn.Store(fid, frame, mark, ranges)
	if transient(err) && !selfRetrying(conn) {
		e.bump(func(s *Stats) { s.StoreRetries++ })
		err = conn.Store(fid, frame, mark, ranges)
	}
	if wire.IsStatus(err, wire.StatusExists) {
		err = nil
	}
	return err
}

// StoreAsync dispatches Store on the server's bounded store queue. It
// blocks while the server's pipeline is full — the write flow control of
// §2.1.2 — then returns with the store running in the background. done
// is invoked with the final error (nil on success) before the store is
// counted complete, so a Wait that returns has observed every done
// callback's effects.
func (e *Engine) StoreAsync(conn transport.ServerConn, fid wire.FID, frame []byte, mark bool, ranges []wire.ACLRange, done func(error)) {
	e.mu.Lock()
	sem := e.storeSems[conn.ID()]
	e.mu.Unlock()
	if sem != nil {
		sem <- struct{}{}
	}
	releaseOp := e.acquireOp(conn.ID())
	e.mu.Lock()
	e.inflight++
	e.mu.Unlock()
	go func() {
		err := e.Store(conn, fid, frame, mark, ranges)
		done(err)
		releaseOp()
		if sem != nil {
			<-sem
		}
		e.mu.Lock()
		e.inflight--
		e.cond.Broadcast()
		e.mu.Unlock()
	}()
}

// Wait blocks until every dispatched asynchronous store has completed
// (and its done callback has run).
func (e *Engine) Wait() {
	e.mu.Lock()
	for e.inflight > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}
