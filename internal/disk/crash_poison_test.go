package disk

import (
	"errors"
	"testing"
)

// TestCrashDiskPoisonsAllIO pins the post-crash contract: once Crash
// fires, every I/O method fails with ErrCrashed — a crashed disk must
// not silently serve stale reads or accept writes the test would then
// mistake for durable state.
func TestCrashDiskPoisonsAllIO(t *testing.T) {
	d := NewCrashDisk(NewMemDisk(1 << 16))
	if err := d.WriteAt([]byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Crash()

	if err := d.ReadAt(make([]byte, 6), 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("ReadAt after Crash: err = %v, want ErrCrashed", err)
	}
	if err := d.WriteAt([]byte("after"), 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("WriteAt after Crash: err = %v, want ErrCrashed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("Sync after Crash: err = %v, want ErrCrashed", err)
	}

	// The non-I/O methods stay usable: recovery reads the durable image
	// through Backing and sizes the replacement disk with Size.
	if d.Size() != 1<<16 {
		t.Errorf("Size after Crash = %d, want %d", d.Size(), 1<<16)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close after Crash: %v", err)
	}
	got := make([]byte, 6)
	if err := d.Backing().ReadAt(got, 0); err != nil {
		t.Fatalf("Backing().ReadAt: %v", err)
	}
	if string(got) != "before" {
		t.Errorf("durable image = %q, want %q", got, "before")
	}
}

// TestCrashDiskDoubleCrashIdempotent verifies Crash can fire again —
// including after a failed post-crash operation — without panicking or
// resurrecting state.
func TestCrashDiskDoubleCrashIdempotent(t *testing.T) {
	d := NewCrashDisk(NewMemDisk(1 << 16))
	if err := d.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("volatile"), 100); err != nil {
		t.Fatal(err)
	}

	d.Crash()
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync between crashes: err = %v, want ErrCrashed", err)
	}
	d.Crash() // must be a no-op, not a panic or a state reset

	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("ReadAt after double Crash: err = %v, want ErrCrashed", err)
	}
	if n := d.PendingWrites(); n != 0 {
		t.Errorf("PendingWrites after double Crash = %d, want 0", n)
	}
	got := make([]byte, 7)
	if err := d.Backing().ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Errorf("durable image = %q, want %q", got, "durable")
	}
	// The dropped volatile write must not have leaked to the backing disk.
	tail := make([]byte, 8)
	if err := d.Backing().ReadAt(tail, 100); err != nil {
		t.Fatal(err)
	}
	for i, b := range tail {
		if b != 0 {
			t.Fatalf("backing[%d] = %#x, want 0 (unsynced write survived the crash)", 100+i, b)
		}
	}
}
