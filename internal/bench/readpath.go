// Readpath benchmark: what the serving tier buys on a read-heavy,
// many-client, Zipf-skewed workload (DESIGN.md §3.13). One client writes
// a dataset; a fleet of reader clients then hammers it with Zipf(1.0)
// block reads — the hot-set skew typical of "millions of readers, few
// writers" serving. The workload runs once with the serving tier off
// (no server extent cache, no readahead anywhere — the prototype's
// behaviour) and again across a sweep of server cache sizes and
// readahead depths with client readahead armed. Hit rates and
// bytes-copied counters come back through server.Stats, the same
// counters swarmctl stat prints against a live cluster.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/blockcache"
	"swarm/internal/core"
	"swarm/internal/model"
)

// ReadpathConfig parameterizes the serving-tier comparison.
type ReadpathConfig struct {
	Servers   int
	Blocks    int // dataset size in blocks
	BlockSize int
	Clients   int // concurrent reader clients
	Ops       int // reads per client
	Scale     float64
}

func (c ReadpathConfig) withDefaults() ReadpathConfig {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.Blocks == 0 {
		c.Blocks = 4096
	}
	if c.BlockSize == 0 {
		c.BlockSize = 8192
	}
	if c.Clients == 0 {
		c.Clients = 16
	}
	if c.Ops == 0 {
		c.Ops = 2000
	}
	if c.Scale == 0 {
		c.Scale = 10
	}
	return c
}

// ReadpathResult is one serving-tier configuration's measurement.
type ReadpathResult struct {
	Mode          string  `json:"mode"` // "off" or "cache<N>MB+ra<D>"
	ServerCacheMB int     `json:"server_cache_mb"`
	ServerRA      int     `json:"server_readahead"`
	ClientRA      int     `json:"client_readahead"`
	Clients       int     `json:"clients"`
	Ops           int     `json:"ops_total"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	ReadMBps      float64 `json:"mb_per_s"`
	// Server-side read path counters, summed across servers.
	ServerHitRate  float64 `json:"server_hit_rate"`
	ServerHits     int64   `json:"server_hits"`
	ServerMisses   int64   `json:"server_misses"`
	ReadaheadLoads int64   `json:"readahead_loads"`
	BytesCachedMB  float64 `json:"bytes_from_cache_mb"`
	BytesDiskMB    float64 `json:"bytes_from_disk_mb"`
	// Client-side block cache behaviour, summed across readers.
	ClientHitRate       float64 `json:"client_hit_rate"`
	PrefetchedFragments int64   `json:"prefetched_fragments"`
}

// zipfRanks returns n Zipf(s=1.0) samples in [0,n) using inverse-CDF
// sampling (stdlib rand.Zipf requires s > 1, so the classic s = 1.0 of
// web serving needs its own sampler). The cumulative table costs O(n)
// once; each sample is one binary search.
type zipfSampler struct {
	cum []float64
	rng *rand.Rand
}

func newZipfSampler(n int, seed int64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
		cum[i] = total
	}
	return &zipfSampler{cum: cum, rng: rand.New(rand.NewSource(seed))}
}

func (z *zipfSampler) next() int {
	u := z.rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

// readpathMode is one row of the sweep.
type readpathMode struct {
	name     string
	cacheMB  int // server extent cache; 0 = serving tier off
	serverRA int
	clientRA int
}

// RunReadpath measures the Zipf read workload with the serving tier off
// and across a (cache size × readahead depth) sweep. Results come back
// in sweep order, "off" first.
func RunReadpath(cfg ReadpathConfig, progress func(string)) ([]ReadpathResult, error) {
	cfg = cfg.withDefaults()
	if progress == nil {
		progress = func(string) {}
	}
	modes := []readpathMode{
		{name: "off", cacheMB: 0, serverRA: 0, clientRA: 0},
		{name: "cache16MB", cacheMB: 16, serverRA: 0, clientRA: 0},
		{name: "cache16MB+ra4", cacheMB: 16, serverRA: 4, clientRA: 0},
		{name: "cache64MB+ra4", cacheMB: 64, serverRA: 4, clientRA: 0},
		{name: "cache64MB+ra4+clientra16", cacheMB: 64, serverRA: 4, clientRA: 16},
	}
	var out []ReadpathResult
	for _, m := range modes {
		progress(fmt.Sprintf("readpath: %s (%d clients, %d ops each)", m.name, cfg.Clients, cfg.Ops))
		r, err := runReadpathMode(cfg, m)
		if err != nil {
			return out, fmt.Errorf("readpath %s: %w", m.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runReadpathMode(cfg ReadpathConfig, mode readpathMode) (ReadpathResult, error) {
	params := model.Paper1999().Scaled(cfg.Scale)
	dataBytes := int64(cfg.Blocks) * int64(cfg.BlockSize)
	cluster, err := NewSimCluster(ClusterConfig{
		Servers:   cfg.Servers,
		DiskBytes: dataBytes*4 + (64 << 20),
		Params:    params,
	})
	if err != nil {
		return ReadpathResult{}, err
	}
	if mode.cacheMB > 0 {
		for _, st := range cluster.Stores() {
			st.SetReadCache(int64(mode.cacheMB)<<20, mode.serverRA)
		}
	}

	// Write the dataset.
	wenv := cluster.Client(1)
	wlog, _, err := core.Open(core.Config{
		Client:       1,
		Servers:      wenv.Conns,
		CPU:          wenv.CPU,
		FragOverhead: params.ClientFragOverhead,
	})
	if err != nil {
		return ReadpathResult{}, err
	}
	block := make([]byte, cfg.BlockSize)
	addrs := make([]core.BlockAddr, 0, cfg.Blocks)
	for i := 0; i < cfg.Blocks; i++ {
		addr, aerr := wlog.AppendBlock(7, block, nil)
		if aerr != nil {
			return ReadpathResult{}, aerr
		}
		addrs = append(addrs, addr)
	}
	if err := wlog.Sync(); err != nil {
		return ReadpathResult{}, err
	}
	if err := wlog.Close(); err != nil {
		return ReadpathResult{}, err
	}

	// Permute Zipf rank → block so the hot set is spread across the
	// whole log rather than clustered in the first fragment. Fixed seed:
	// every mode reads the identical reference string.
	perm := rand.New(rand.NewSource(42)).Perm(cfg.Blocks)

	// Reader fleet: each reader is its own client machine (own NIC, own
	// log handle, own block cache) reading the writer's log. Client
	// block caches are identical in every mode — an eighth of the
	// dataset — so the measured difference is the serving tier, not
	// client-side caching.
	type readerState struct {
		log   *core.Log
		cache *blockcache.Cache
	}
	readers := make([]readerState, cfg.Clients)
	clientCache := dataBytes / 8
	for i := range readers {
		renv := cluster.Client(1)
		rlog, _, oerr := core.Open(core.Config{
			Client:             1,
			Servers:            renv.Conns,
			CPU:                renv.CPU,
			FragOverhead:       params.ClientFragOverhead,
			ReadaheadFragments: mode.clientRA,
		})
		if oerr != nil {
			return ReadpathResult{}, oerr
		}
		c := blockcache.New(rlog, clientCache)
		if mode.clientRA > 0 {
			c.SetReadahead(mode.clientRA)
		}
		readers[i] = readerState{log: rlog, cache: c}
	}

	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for i := range readers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			z := newZipfSampler(cfg.Blocks, int64(i)+1)
			rd := readers[i]
			for op := 0; op < cfg.Ops; op++ {
				addr := addrs[perm[z.next()]]
				if _, rerr := rd.cache.ReadBlock(addr, uint32(cfg.BlockSize), 0, uint32(cfg.BlockSize)); rerr != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("read %v: %w", addr, rerr))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return ReadpathResult{}, err
	}

	// Gather counters before tearing the readers down.
	var cHits, cMisses, prefetched int64
	for _, rd := range readers {
		h, m, _ := rd.cache.Stats()
		cHits += h
		cMisses += m
		prefetched += rd.log.Stats().PrefetchedFragments
		if cerr := rd.log.Close(); cerr != nil {
			return ReadpathResult{}, cerr
		}
	}
	var sHits, sMisses, raLoads, bytesCached, bytesDisk int64
	for _, st := range cluster.Stores() {
		ss := st.Stats()
		sHits += ss.ReadHits
		sMisses += ss.ReadMisses
		raLoads += ss.ReadaheadLoads
		bytesCached += ss.ReadBytesCached
		bytesDisk += ss.ReadBytesDisk
	}

	totalOps := cfg.Clients * cfg.Ops
	totalBytes := float64(totalOps) * float64(cfg.BlockSize)
	res := ReadpathResult{
		Mode:          mode.name,
		ServerCacheMB: mode.cacheMB,
		ServerRA:      mode.serverRA,
		ClientRA:      mode.clientRA,
		Clients:       cfg.Clients,
		Ops:           totalOps,
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		// Normalized to 1999-equivalents like the write figures; the
		// ratio between modes (the speedup) is scale-invariant.
		ReadMBps:            totalBytes / elapsed.Seconds() / model.MB / cfg.Scale,
		ServerHits:          sHits,
		ServerMisses:        sMisses,
		ReadaheadLoads:      raLoads,
		BytesCachedMB:       float64(bytesCached) / model.MB,
		BytesDiskMB:         float64(bytesDisk) / model.MB,
		PrefetchedFragments: prefetched,
	}
	if sHits+sMisses > 0 {
		res.ServerHitRate = float64(sHits) / float64(sHits+sMisses)
	}
	if cHits+cMisses > 0 {
		res.ClientHitRate = float64(cHits) / float64(cHits+cMisses)
	}
	return res, nil
}

// ReadpathSpeedup returns the best serving-tier-on throughput over the
// serving-tier-off baseline.
func ReadpathSpeedup(rows []ReadpathResult) float64 {
	var off, best float64
	for _, r := range rows {
		if r.Mode == "off" {
			off = r.ReadMBps
		} else if r.ReadMBps > best {
			best = r.ReadMBps
		}
	}
	if off == 0 {
		return 0
	}
	return best / off
}

// PrintReadpathResults renders the sweep table.
func PrintReadpathResults(w io.Writer, rows []ReadpathResult) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Readpath — serving tier on Zipf(1.0) reads (%d clients, %d reads total)\n",
		rows[0].Clients, rows[0].Ops)
	fmt.Fprintf(w, "%-26s %-10s %-10s %-12s %-12s %-12s %s\n",
		"mode", "MB/s", "elapsed", "srv hit%", "cli hit%", "ra loads", "MB cache/disk")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %-10.1f %-10s %-12.1f %-12.1f %-12d %.0f/%.0f\n",
			r.Mode, r.ReadMBps,
			(time.Duration(r.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond).String(),
			100*r.ServerHitRate, 100*r.ClientHitRate, r.ReadaheadLoads,
			r.BytesCachedMB, r.BytesDiskMB)
	}
	fmt.Fprintf(w, "speedup (best vs off): %.2fx\n\n", ReadpathSpeedup(rows))
}

// WriteReadpathJSON writes the machine-readable benchmark record
// (consumed by CI and tracked across PRs in EXPERIMENTS.md).
func WriteReadpathJSON(path string, rows []ReadpathResult) error {
	doc := struct {
		Figure  string           `json:"figure"`
		Meta    RunMeta          `json:"meta"`
		Speedup float64          `json:"speedup"`
		Results []ReadpathResult `json:"results"`
	}{
		Figure:  "readpath",
		Meta:    NewRunMeta(),
		Speedup: math.Round(ReadpathSpeedup(rows)*100) / 100,
		Results: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
