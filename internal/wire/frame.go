package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
)

// Frame errors.
var (
	// ErrBadMagic is returned when a frame does not start with the
	// protocol magic.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrBadCRC is returned when a frame fails its checksum.
	ErrBadCRC = errors.New("wire: frame checksum mismatch")
	// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame too large")
)

// Frame layout (little-endian):
//
//	offset  size  field
//	0       4     magic "SWM1"
//	4       1     kind (1 = request, 2 = response)
//	5       1     op
//	6       1     status (0 in requests)
//	7       8     request id (echoed in the response)
//	15      4     client id (requests) / 0 (responses)
//	19      4     body length N
//	23      N     body (encoded Message; error string for non-OK status)
//	23+N    4     CRC-32 (IEEE) over header + body
//
// MaxFrameSize bounds a single frame (fragments are ≤ a few MB).
const MaxFrameSize = 64 << 20

const (
	frameMagic   = 0x314d5753 // "SWM1" little-endian
	frameHdrSize = 4 + 1 + 1 + 1 + 8 + 4 + 4
	frameKindReq = 1
	frameKindRsp = 2
)

// Request is one client→server frame.
type Request struct {
	Op     Op
	ID     uint64 // request identifier, echoed in the response
	Client ClientID
	Body   []byte // encoded Message
}

// Response is one server→client frame. When Status != StatusOK, Body holds
// a length-prefixed error message instead of a message body.
type Response struct {
	Op     Op
	ID     uint64
	Status Status
	Body   []byte
}

// Err converts a non-OK response into an error, or returns nil.
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	msg := ""
	d := NewDecoder(r.Body)
	if s := d.String32(); d.Err() == nil {
		msg = s
	}
	return &StatusError{Status: r.Status, Msg: msg}
}

// StatusError is the error form of a non-OK response.
type StatusError struct {
	Status Status
	Msg    string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("server: %s", e.Status)
	}
	return fmt.Sprintf("server: %s: %s", e.Status, e.Msg)
}

// IsStatus reports whether err is a StatusError with the given status.
func IsStatus(err error, s Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == s
}

// writeFrame frames body (+ optional out-of-band payload) and writes it
// in one vectored call. On the wire the payload is simply the tail of the
// frame body: callers that pass one must have encoded its length prefix
// at the end of body (see PayloadMessage), which keeps the format
// byte-identical to encoding the payload inline while never copying it.
func writeFrame(w io.Writer, kind uint8, op Op, id uint64, aux uint32, status Status, body, payload []byte) error {
	if len(body)+len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = kind
	hdr[5] = uint8(op)
	hdr[6] = uint8(status)
	binary.LittleEndian.PutUint64(hdr[7:], id)
	binary.LittleEndian.PutUint32(hdr[15:], aux)
	binary.LittleEndian.PutUint32(hdr[19:], uint32(len(body)+len(payload)))
	crc := crc32.Update(0, crc32.IEEETable, hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc)

	// net.Buffers turns into one writev on a *net.TCPConn and sequential
	// Writes elsewhere; either way the payload goes out without being
	// copied into an intermediate buffer.
	bufs := make(net.Buffers, 0, 4)
	bufs = append(bufs, hdr[:], body)
	if len(payload) > 0 {
		bufs = append(bufs, payload)
	}
	bufs = append(bufs, sum[:])
	_, err := bufs.WriteTo(w)
	return err
}

// readFrame reads one frame. The returned body comes from the buffer pool
// (GetBuffer); the caller owns it and should PutBuffer it once decoded
// values no longer alias it.
func readFrame(r io.Reader) (kind uint8, op Op, id uint64, aux uint32, status Status, body []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		err = ErrBadMagic
		return
	}
	kind = hdr[4]
	op = Op(hdr[5])
	status = Status(hdr[6])
	id = binary.LittleEndian.Uint64(hdr[7:])
	aux = binary.LittleEndian.Uint32(hdr[15:])
	n := binary.LittleEndian.Uint32(hdr[19:])
	if n > MaxFrameSize {
		err = ErrFrameTooLarge
		return
	}
	body = GetBuffer(int(n))
	if _, err = io.ReadFull(r, body); err != nil {
		PutBuffer(body)
		body = nil
		return
	}
	var sum [4]byte
	if _, err = io.ReadFull(r, sum[:]); err != nil {
		PutBuffer(body)
		body = nil
		return
	}
	crc := crc32.Update(0, crc32.IEEETable, hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != binary.LittleEndian.Uint32(sum[:]) {
		PutBuffer(body)
		body = nil
		err = ErrBadCRC
	}
	return
}

// encodeMessage encodes msg for framing, splitting off the bulk payload
// when the message carries one out-of-band.
func encodeMessage(msg Message) (body, payload []byte) {
	e := NewEncoder(64)
	if pm, ok := msg.(PayloadMessage); ok {
		pm.EncodeHeader(e)
		return e.Bytes(), pm.Payload()
	}
	msg.Encode(e)
	return e.Bytes(), nil
}

// WriteRequest frames and writes a request carrying msg.
func WriteRequest(w io.Writer, op Op, id uint64, client ClientID, msg Message) error {
	body, payload := encodeMessage(msg)
	return writeFrame(w, frameKindReq, op, id, uint32(client), 0, body, payload)
}

// ReadRequestFrame reads one request frame.
func ReadRequestFrame(r io.Reader) (*Request, error) {
	kind, op, id, aux, _, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if kind != frameKindReq {
		return nil, fmt.Errorf("%w: expected request frame, got kind %d", ErrBadMessage, kind)
	}
	return &Request{Op: op, ID: id, Client: ClientID(aux), Body: body}, nil
}

// WriteResponse frames and writes an OK response carrying msg.
func WriteResponse(w io.Writer, op Op, id uint64, msg Message) error {
	body, payload := encodeMessage(msg)
	return writeFrame(w, frameKindRsp, op, id, 0, StatusOK, body, payload)
}

// WriteErrorResponse frames and writes a non-OK response with a message.
func WriteErrorResponse(w io.Writer, op Op, id uint64, status Status, msg string) error {
	e := NewEncoder(len(msg) + 4)
	e.String32(msg)
	return writeFrame(w, frameKindRsp, op, id, 0, status, e.Bytes(), nil)
}

// ReadResponseFrame reads one response frame.
func ReadResponseFrame(r io.Reader) (*Response, error) {
	kind, op, id, _, status, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if kind != frameKindRsp {
		return nil, fmt.Errorf("%w: expected response frame, got kind %d", ErrBadMessage, kind)
	}
	return &Response{Op: op, ID: id, Status: status, Body: body}, nil
}

// BufferSizes for connection readers/writers; exported so both client and
// server sides use consistent values.
const (
	// ReadBufferSize is the bufio reader size for protocol connections.
	ReadBufferSize = 256 << 10
	// WriteBufferSize is the bufio writer size for protocol connections.
	WriteBufferSize = 256 << 10
)

// NewConnReader wraps a connection for frame reading.
func NewConnReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, ReadBufferSize) }

// NewConnWriter wraps a connection for frame writing.
func NewConnWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, WriteBufferSize) }
