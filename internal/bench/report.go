package bench

import (
	"fmt"
	"io"
	"time"

	"swarm/internal/mab"
)

// PaperValue is a reference number from the paper for side-by-side
// reporting. Zero means the paper gives no number for that point.
type PaperValue struct {
	Clients, Servers int
	MBps             float64
}

// Paper-reported points (§3.4 text and the Conclusion; the figures are
// graphs, so only the quoted values are exact).
var (
	// PaperFigure3 — raw write bandwidth.
	PaperFigure3 = []PaperValue{
		{Clients: 1, Servers: 1, MBps: 6.1},
		{Clients: 1, Servers: 8, MBps: 6.4},
		{Clients: 2, Servers: 8, MBps: 12.9},
		{Clients: 4, Servers: 8, MBps: 19.3},
	}
	// PaperFigure4 — useful write throughput.
	PaperFigure4 = []PaperValue{
		{Clients: 1, Servers: 2, MBps: 3.0},
		{Clients: 1, Servers: 4, MBps: 5.5},
		{Clients: 4, Servers: 2, MBps: 6.7},
		{Clients: 4, Servers: 8, MBps: 16.0},
	}
	// PaperColdReadMBps — "a Swarm client can read 4KB blocks from the
	// servers at only 1.7 MB/s".
	PaperColdReadMBps = 1.7
	// PaperMABSting / PaperMABExt2 — Figure 5 elapsed seconds.
	PaperMABSting = 9.4 * float64(time.Second)
	PaperMABExt2  = 17.9 * float64(time.Second)
	// PaperMABStingCPU / PaperMABExt2CPU — CPU utilizations.
	PaperMABStingCPU = 0.93
	PaperMABExt2CPU  = 0.57
)

func paperRef(refs []PaperValue, clients, servers int) string {
	for _, r := range refs {
		if r.Clients == clients && r.Servers == servers {
			return fmt.Sprintf("%5.1f", r.MBps)
		}
	}
	return "    -"
}

// PrintWriteResults renders a Figure 3/4 sweep as the series the paper
// plots: one line per (clients, servers) point, with the paper's quoted
// value alongside where one exists.
func PrintWriteResults(w io.Writer, title string, results []WriteResult, raw bool, refs []PaperValue) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %-8s %-12s %-12s %s\n", "clients", "servers", "MB/s", "paper MB/s", "elapsed(1999)")
	for _, r := range results {
		mbps := r.UsefulMBps
		if raw {
			mbps = r.RawMBps
		}
		fmt.Fprintf(w, "%-8d %-8d %-12.2f %-12s %v\n",
			r.Clients, r.Servers, mbps, paperRef(refs, r.Clients, r.Servers), r.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}

// PrintMABResults renders Figure 5.
func PrintMABResults(w io.Writer, stingRes, extRes MABResult) {
	fmt.Fprintf(w, "Figure 5 — Modified Andrew Benchmark (%d files, %d KB)\n",
		stingRes.Files, stingRes.Bytes>>10)
	fmt.Fprintf(w, "%-40s %-14s %-10s %-14s %s\n", "system", "elapsed(1999)", "CPU util", "paper elapsed", "paper util")
	fmt.Fprintf(w, "%-40s %-14v %-10.0f%% %-14s %.0f%%\n",
		stingRes.System, stingRes.Elapsed.Round(10*time.Millisecond), stingRes.CPUUtilization*100,
		fmt.Sprintf("%.1fs", PaperMABSting/float64(time.Second)), PaperMABStingCPU*100)
	fmt.Fprintf(w, "%-40s %-14v %-10.0f%% %-14s %.0f%%\n",
		extRes.System, extRes.Elapsed.Round(10*time.Millisecond), extRes.CPUUtilization*100,
		fmt.Sprintf("%.1fs", PaperMABExt2/float64(time.Second)), PaperMABExt2CPU*100)
	fmt.Fprintf(w, "speedup: %.2fx (paper: %.2fx)\n",
		float64(extRes.Elapsed)/float64(stingRes.Elapsed), PaperMABExt2/PaperMABSting)
	fmt.Fprintf(w, "phases (Sting vs ext2fs):\n")
	for i, name := range mab.PhaseNames {
		fmt.Fprintf(w, "  %-10s %10v %10v\n", name,
			stingRes.Phases[i].Round(time.Millisecond), extRes.Phases[i].Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}

// PrintReadResult renders the cold/prefetched/cached read measurement.
func PrintReadResult(w io.Writer, r ReadResult) {
	fmt.Fprintf(w, "Cold 4 KB read bandwidth (§3.4 in-text; prefetch = the paper's proposed fix)\n")
	fmt.Fprintf(w, "%-10s %-12s %-12s %-16s %s\n", "servers", "cold MB/s", "paper MB/s", "prefetch MB/s", "client-cached MB/s")
	fmt.Fprintf(w, "%-10d %-12.2f %-12.1f %-16.2f %.0f\n", r.Servers, r.ColdMBps, PaperColdReadMBps, r.PrefetchMBps, r.CachedMBps)
	fmt.Fprintln(w)
}

// PrintAblation renders an ablation table.
func PrintAblation(w io.Writer, title string, rows []AblationResult) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-44s %-12s %s\n", "configuration", "raw MB/s", "useful MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-44s %-12.2f %.2f\n", r.Name, r.RawMBps, r.UsefulMBps)
	}
	fmt.Fprintln(w)
}

// PrintDegradedRead renders the reconstruction ablation.
func PrintDegradedRead(w io.Writer, r DegradedReadResult) {
	fmt.Fprintf(w, "Degraded reads (first-touch latency per fragment, %d servers)\n", r.Servers)
	fmt.Fprintf(w, "%-36s %v\n", "all servers up:", r.HealthyLatency.Round(10*time.Microsecond))
	fmt.Fprintf(w, "%-36s %v (%d reconstructions)\n", "one server down (reconstruction):", r.DegradedLatency.Round(10*time.Microsecond), r.Reconstructions)
	fmt.Fprintln(w)
}
