// Package ldisk implements the logical disk service the paper sketches in
// §2.2 (after de Jonge et al., cited as [4]): a disk abstraction that
// hides the append-only log, letting higher layers and applications
// overwrite the blocks they store. An overwrite appends the new contents
// to the log and marks the old block deleted; the logical-to-log address
// map is checkpointed and rolled forward from creation/deletion records.
package ldisk

import (
	"errors"
	"fmt"
	"sync"

	"swarm/internal/codec"
	"swarm/internal/core"
	"swarm/internal/service"
	"swarm/internal/wire"
)

// Logical disk errors.
var (
	// ErrNoBlock is returned when reading an unwritten logical block.
	ErrNoBlock = errors.New("ldisk: logical block not written")
	// ErrTooLarge is returned when a write exceeds the block size.
	ErrTooLarge = errors.New("ldisk: write exceeds block size")
)

// Disk is a logical disk: a sparse array of overwritable blocks layered
// on the log.
type Disk struct {
	id        core.ServiceID
	log       *core.Log
	blockSize int
	codec     codec.Codec

	mu    sync.Mutex
	table map[uint64]entry
	dirty bool
}

type entry struct {
	addr core.BlockAddr
	size uint32
}

var _ service.Service = (*Disk)(nil)

// New returns a logical disk with the given block size, writing under
// service ID id.
func New(id core.ServiceID, log *core.Log, blockSize int) (*Disk, error) {
	if blockSize <= 0 || blockSize > log.MaxBlockSize() {
		return nil, fmt.Errorf("ldisk: block size %d out of range (max %d)", blockSize, log.MaxBlockSize())
	}
	return &Disk{id: id, log: log, blockSize: blockSize, codec: codec.Identity{}, table: make(map[uint64]entry)}, nil
}

// SetCodec installs a block codec — the paper's compression and
// encryption services (§2.2) composed under the logical disk. Install it
// before writing; the same codec (and key) must be installed on every
// mount of the same log.
func (d *Disk) SetCodec(c codec.Codec) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c == nil {
		c = codec.Identity{}
	}
	d.codec = c
}

// ID implements service.Service.
func (d *Disk) ID() core.ServiceID { return d.id }

// BlockSize returns the logical block size.
func (d *Disk) BlockSize() int { return d.blockSize }

func hintFor(lbn uint64) []byte {
	e := wire.NewEncoder(8)
	e.U64(lbn)
	return e.Bytes()
}

func lbnFromHint(hint []byte) (uint64, error) {
	d := wire.NewDecoder(hint)
	lbn := d.U64()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("ldisk: bad hint: %w", err)
	}
	return lbn, nil
}

// Write stores data as the new contents of logical block lbn,
// overwriting any previous contents.
func (d *Disk) Write(lbn uint64, data []byte) error {
	if len(data) > d.blockSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), d.blockSize)
	}
	stored, err := d.codec.Encode(data)
	if err != nil {
		return fmt.Errorf("ldisk: encode block %d: %w", lbn, err)
	}
	if len(stored) > d.log.MaxBlockSize() {
		return fmt.Errorf("%w: encoded block is %d bytes", ErrTooLarge, len(stored))
	}
	addr, err := d.log.AppendBlock(d.id, stored, hintFor(lbn))
	if err != nil {
		return err
	}
	d.mu.Lock()
	old, had := d.table[lbn]
	d.table[lbn] = entry{addr: addr, size: uint32(len(stored))}
	d.dirty = true
	d.mu.Unlock()
	if had {
		if err := d.log.DeleteBlock(old.addr, old.size, d.id); err != nil {
			return err
		}
	}
	return nil
}

// Read returns the current contents of logical block lbn.
func (d *Disk) Read(lbn uint64) ([]byte, error) {
	d.mu.Lock()
	e, ok := d.table[lbn]
	cdc := d.codec
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoBlock, lbn)
	}
	stored, err := d.log.Read(e.addr, 0, e.size)
	if err != nil {
		return nil, err
	}
	data, err := cdc.Decode(stored)
	if err != nil {
		return nil, fmt.Errorf("ldisk: decode block %d: %w", lbn, err)
	}
	return data, nil
}

// Free discards logical block lbn.
func (d *Disk) Free(lbn uint64) error {
	d.mu.Lock()
	e, ok := d.table[lbn]
	if ok {
		delete(d.table, lbn)
		d.dirty = true
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoBlock, lbn)
	}
	return d.log.DeleteBlock(e.addr, e.size, d.id)
}

// Blocks returns the number of written logical blocks.
func (d *Disk) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.table)
}

// Sync flushes the underlying log.
func (d *Disk) Sync() error { return d.log.Sync() }

// Checkpoint persists the logical-to-log map.
func (d *Disk) Checkpoint() error {
	d.mu.Lock()
	e := wire.NewEncoder(8 + len(d.table)*24)
	e.U32(uint32(len(d.table)))
	for lbn, ent := range d.table {
		e.U64(lbn)
		e.U64(uint64(ent.addr.FID))
		e.U32(ent.addr.Off)
		e.U32(ent.size)
	}
	d.dirty = false
	d.mu.Unlock()
	_, err := d.log.WriteCheckpoint(d.id, e.Bytes())
	return err
}

// RestoreCheckpoint implements service.Service.
func (d *Disk) RestoreCheckpoint(payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.table = make(map[uint64]entry)
	if payload == nil {
		return nil
	}
	dec := wire.NewDecoder(payload)
	n := dec.U32()
	for i := uint32(0); i < n && dec.Err() == nil; i++ {
		lbn := dec.U64()
		d.table[lbn] = entry{
			addr: core.BlockAddr{FID: wire.FID(dec.U64()), Off: dec.U32()},
			size: dec.U32(),
		}
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("ldisk: bad checkpoint: %w", err)
	}
	return nil
}

// Replay implements service.Service: creation records re-bind logical
// blocks (later records win, which also absorbs cleaner moves); deletion
// records unbind the matching address.
func (d *Disk) Replay(rec core.ReplayEntry) error {
	switch rec.Kind {
	case core.EntryCreate:
		cr, err := core.DecodeCreateRecord(rec.Payload)
		if err != nil {
			return err
		}
		lbn, err := lbnFromHint(cr.Hint)
		if err != nil {
			return err
		}
		d.mu.Lock()
		d.table[lbn] = entry{addr: cr.Addr, size: cr.Len}
		d.mu.Unlock()
	case core.EntryDelete:
		dr, err := core.DecodeDeleteRecord(rec.Payload)
		if err != nil {
			return err
		}
		d.mu.Lock()
		for lbn, e := range d.table {
			if e.addr == dr.Addr {
				delete(d.table, lbn)
				break
			}
		}
		d.mu.Unlock()
	}
	return nil
}

// BlockMoved implements service.Service: rebind the logical block whose
// hint matches, provided it still points at the old address.
func (d *Disk) BlockMoved(old, newAddr core.BlockAddr, length uint32, hint []byte) error {
	lbn, err := lbnFromHint(hint)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.table[lbn]; ok && e.addr == old {
		d.table[lbn] = entry{addr: newAddr, size: length}
		d.dirty = true
	}
	return nil
}

// BlockLive implements service.Service.
func (d *Disk) BlockLive(addr core.BlockAddr, hint []byte) bool {
	lbn, err := lbnFromHint(hint)
	if err != nil {
		return true // unknown: safe answer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.table[lbn]
	return ok && e.addr == addr
}

// CheckpointDemand implements service.Service by checkpointing now.
func (d *Disk) CheckpointDemand() error { return d.Checkpoint() }
