package bench

import (
	"io"
	"path/filepath"
	"testing"
	"time"
)

// TestQoSSmoke runs a tiny multi-tenant overload sweep end to end: all
// four regimes complete, the rows are shaped right, and the per-tenant
// accounting is self-consistent. The isolation ratios (light tenant near
// its solo baseline, aggregate goodput near FIFO) are timing-sensitive,
// so like the other benchmark ratios they are enforced only under
// SWARM_BENCH_STRICT.
func TestQoSSmoke(t *testing.T) {
	skipUnderRace(t)
	rows, err := RunQoS(QoSBenchConfig{
		Servers:       2,
		FragBytes:     16 << 10,
		LightWriters:  1,
		GreedyWriters: 8,
		Duration:      300 * time.Millisecond,
		Warmup:        100 * time.Millisecond,
		Scale:         50,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (solo, fifo, wfq, wfq+quota)", len(rows))
	}
	for i, want := range []string{"solo", "fifo", "wfq", "wfq+quota"} {
		if rows[i].Mode != want {
			t.Fatalf("rows[%d].Mode = %q, want %q", i, rows[i].Mode, want)
		}
	}
	solo := rows[0]
	if len(solo.Tenants) != 1 || solo.Tenants[0].Tenant != "light" {
		t.Fatalf("solo tenants = %+v, want just the light tenant", solo.Tenants)
	}
	if solo.Tenants[0].Ops == 0 {
		t.Fatal("solo mode served no operations")
	}
	for _, r := range rows[1:] {
		if len(r.Tenants) != 2 {
			t.Fatalf("%s: tenants = %d, want light + greedy", r.Mode, len(r.Tenants))
		}
		for _, tn := range r.Tenants {
			if tn.Ops == 0 {
				t.Fatalf("%s/%s: tenant starved outright (0 ops)", r.Mode, tn.Tenant)
			}
			if tn.MBps <= 0 || tn.P50MS <= 0 || tn.P99MS < tn.P50MS {
				t.Fatalf("%s/%s: implausible stats %+v", r.Mode, tn.Tenant, tn)
			}
		}
		if r.AggregateMBps <= 0 {
			t.Fatalf("%s: zero aggregate goodput", r.Mode)
		}
	}
	// FIFO must not shed (there is no admission control to shed from),
	// and no busy retries should reach a FIFO server.
	if ft := qosTenant(rows[1], "greedy"); ft.Sheds != 0 || ft.BusyRetries != 0 {
		t.Fatalf("fifo sheds = %d busy retries = %d, want 0", ft.Sheds, ft.BusyRetries)
	}
	if iso := QoSIsolationSummary(rows); len(iso) != 3 {
		t.Fatalf("isolation rows = %d, want 3", len(iso))
	}
	PrintQoSResults(io.Discard, rows)
	path := filepath.Join(t.TempDir(), "BENCH_qos.json")
	if err := WriteQoSJSON(path, rows); err != nil {
		t.Fatalf("write json: %v", err)
	}
	if benchStrict() {
		iso := QoSIsolationSummary(rows)
		wfq := iso[1]
		if wfq.LightMBpsFrac < 0.4 {
			t.Fatalf("wfq: light keeps %.0f%% of solo, want >= 40%%", 100*wfq.LightMBpsFrac)
		}
		if wfq.AggVsFIFO < 0.85 {
			t.Fatalf("wfq: aggregate %.0f%% of FIFO, want >= 85%%", 100*wfq.AggVsFIFO)
		}
	}
}
