package wire

import (
	"bytes"
	"testing"
)

func FuzzReadRequestFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteRequest(&buf, OpStore, 7, 1, &StoreRequest{FID: MakeFID(1, 2), Data: []byte("x")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, frameHdrSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequestFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything framed must decode (or fail) without panicking.
		var store StoreRequest
		_ = store.Decode(NewDecoder(req.Body))
		var read ReadRequest
		_ = read.Decode(NewDecoder(req.Body))
		var acl ACLModifyRequest
		_ = acl.Decode(NewDecoder(req.Body))
	})
}

// FuzzResponseStreamDemux models what the transport's demultiplexer
// consumes: a stream of response frames whose request IDs arrive in an
// arbitrary (fuzz-chosen) order, with duplicates, interleaved payload
// sizes, and optional trailing junk. Every well-formed frame must come
// back with the body matching its ID, and the stream must never panic.
func FuzzResponseStreamDemux(f *testing.F) {
	f.Add(uint64(3), []byte{2, 0, 1}, false)
	f.Add(uint64(1000), []byte{5, 5, 0, 3, 1, 4, 2}, true)
	f.Add(uint64(0), []byte{0}, false)
	f.Fuzz(func(t *testing.T, seed uint64, order []byte, junk bool) {
		if len(order) == 0 || len(order) > 64 {
			return
		}
		// bodyFor derives a distinct, checkable payload from each ID.
		bodyFor := func(id uint64) []byte {
			n := int(id % 257)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(id + uint64(i))
			}
			return b
		}
		var stream bytes.Buffer
		want := make([]uint64, 0, len(order))
		for _, o := range order {
			id := seed + uint64(o%8) // small range forces duplicates
			want = append(want, id)
			if err := WriteResponse(&stream, OpRead, id, &ReadResponse{Data: bodyFor(id)}); err != nil {
				t.Fatal(err)
			}
		}
		if junk {
			stream.Write([]byte("\x00\xffnot a frame"))
		}
		r := bytes.NewReader(stream.Bytes())
		for i, id := range want {
			rsp, err := ReadResponseFrame(r)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if rsp.ID != id {
				t.Fatalf("frame %d: id %d, want %d (frames must arrive in write order)", i, rsp.ID, id)
			}
			var rr ReadResponse
			if err := rr.Decode(NewDecoder(rsp.Body)); err != nil {
				t.Fatalf("frame %d: decode: %v", i, err)
			}
			if !bytes.Equal(rr.Data, bodyFor(id)) {
				t.Fatalf("frame %d: body does not match id %d", i, id)
			}
			PutBuffer(rsp.Body)
		}
		if _, err := ReadResponseFrame(r); err == nil {
			t.Fatal("read past the last frame succeeded")
		}
	})
}

// FuzzFrameRoundTrip drives encode→frame→decode for every message type
// in the protocol, with fuzz-chosen field values. The vectored
// PayloadMessage path (StoreRequest and ReadResponse ship their bulk
// payload out of band, spliced onto the frame tail) must be
// byte-identical to inline encoding, so the round trip also proves the
// splice. Messages are compared by re-encoding the decoded form: the
// codec's nil-vs-empty slice distinction is not wire-visible and must
// not fail the trip.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), uint64(3), uint32(4), []byte("payload"), true)
	f.Add(uint64(0), uint32(0), uint64(0), uint32(0), []byte{}, false)
	f.Add(^uint64(0), ^uint32(0), ^uint64(0), uint32(9), bytes.Repeat([]byte{0xa5}, 300), true)
	f.Fuzz(func(t *testing.T, id uint64, client uint32, fid uint64, n uint32, data []byte, mark bool) {
		if len(data) > MaxFrameSize/2 {
			return
		}
		// Derive bounded slice fields from the scalar inputs.
		members := make([]ClientID, int(n%5))
		for i := range members {
			members[i] = ClientID(client + uint32(i))
		}
		ranges := make([]ACLRange, int(n%3))
		for i := range ranges {
			ranges[i] = ACLRange{Off: n + uint32(i), Len: n ^ uint32(i), AID: AID(i)}
		}
		fids := make([]FID, int(n%7))
		for i := range fids {
			fids[i] = FID(fid + uint64(i))
		}
		tenants := make([]TenantStat, int(n%4))
		for i := range tenants {
			tenants[i] = TenantStat{
				Client: ClientID(client + uint32(i)), Weight: n + uint32(i),
				Ops: id + uint64(i), Bytes: id ^ uint64(i), Sheds: id % (uint64(i) + 7),
				Queued: n ^ uint32(i), QueuedBytes: fid + uint64(i),
				P50Micros: id + 10, P99Micros: id + 20,
			}
		}

		encoded := func(m Message) []byte {
			e := NewEncoder(64 + len(data))
			m.Encode(e)
			return e.Bytes()
		}
		// fresh maps each message to a zero instance to decode into.
		fresh := func(m Message) Message {
			switch m.(type) {
			case *PingRequest:
				return &PingRequest{}
			case *StoreRequest:
				return &StoreRequest{}
			case *ReadRequest:
				return &ReadRequest{}
			case *DeleteRequest:
				return &DeleteRequest{}
			case *PreallocRequest:
				return &PreallocRequest{}
			case *LastMarkedRequest:
				return &LastMarkedRequest{}
			case *HasFragmentRequest:
				return &HasFragmentRequest{}
			case *ListFIDsRequest:
				return &ListFIDsRequest{}
			case *ACLCreateRequest:
				return &ACLCreateRequest{}
			case *ACLModifyRequest:
				return &ACLModifyRequest{}
			case *ACLDeleteRequest:
				return &ACLDeleteRequest{}
			case *StatRequest:
				return &StatRequest{}
			case *GenericResponse:
				return &GenericResponse{}
			case *ReadResponse:
				return &ReadResponse{}
			case *LastMarkedResponse:
				return &LastMarkedResponse{}
			case *HasFragmentResponse:
				return &HasFragmentResponse{}
			case *ListFIDsResponse:
				return &ListFIDsResponse{}
			case *ACLCreateResponse:
				return &ACLCreateResponse{}
			case *StatResponse:
				return &StatResponse{}
			}
			t.Fatalf("fresh: unknown message type %T", m)
			return nil
		}

		requests := []struct {
			op  Op
			msg Message
		}{
			{OpPing, &PingRequest{}},
			{OpStore, &StoreRequest{FID: FID(fid), Mark: mark, Ranges: ranges, Data: data}},
			{OpRead, &ReadRequest{FID: FID(fid), Off: n, Len: n + 1}},
			{OpDelete, &DeleteRequest{FID: FID(fid)}},
			{OpPrealloc, &PreallocRequest{FID: FID(fid)}},
			{OpLastMarked, &LastMarkedRequest{Client: ClientID(client)}},
			{OpHasFragment, &HasFragmentRequest{FID: FID(fid)}},
			{OpListFIDs, &ListFIDsRequest{Client: ClientID(client)}},
			{OpACLCreate, &ACLCreateRequest{Members: members}},
			{OpACLModify, &ACLModifyRequest{AID: AID(n), Add: members, Remove: members}},
			{OpACLDelete, &ACLDeleteRequest{AID: AID(n)}},
			{OpStat, &StatRequest{}},
		}
		for _, rq := range requests {
			var buf bytes.Buffer
			if err := WriteRequest(&buf, rq.op, id, ClientID(client), rq.msg); err != nil {
				t.Fatalf("%T: write: %v", rq.msg, err)
			}
			frame, err := ReadRequestFrame(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%T: read frame: %v", rq.msg, err)
			}
			if frame.Op != rq.op || frame.ID != id || frame.Client != ClientID(client) {
				t.Fatalf("%T: frame header (%v,%d,%d) != (%v,%d,%d)",
					rq.msg, frame.Op, frame.ID, frame.Client, rq.op, id, client)
			}
			got := fresh(rq.msg)
			if err := got.Decode(NewDecoder(frame.Body)); err != nil {
				t.Fatalf("%T: decode: %v", rq.msg, err)
			}
			if !bytes.Equal(encoded(got), encoded(rq.msg)) {
				t.Fatalf("%T: round trip changed the message", rq.msg)
			}
			PutBuffer(frame.Body)
		}

		responses := []struct {
			op  Op
			msg Message
		}{
			{OpPing, &GenericResponse{}},
			{OpRead, &ReadResponse{Data: data}},
			{OpLastMarked, &LastMarkedResponse{FID: FID(fid), Found: mark}},
			{OpHasFragment, &HasFragmentResponse{Found: mark, Size: n}},
			{OpListFIDs, &ListFIDsResponse{FIDs: fids}},
			{OpACLCreate, &ACLCreateResponse{AID: AID(n)}},
			{OpStat, &StatResponse{
				FragmentSize: n, TotalSlots: n + 1, FreeSlots: n + 2, Fragments: n + 3,
				Stores: id, SyncRequests: id + 1, Syncs: id + 2,
				EntryBatches: id + 3, EntriesBatched: id + 4, StoreNanos: id + 5,
				Tenants: tenants,
			}},
		}
		for _, rs := range responses {
			var buf bytes.Buffer
			if err := WriteResponse(&buf, rs.op, id, rs.msg); err != nil {
				t.Fatalf("%T: write: %v", rs.msg, err)
			}
			frame, err := ReadResponseFrame(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%T: read frame: %v", rs.msg, err)
			}
			if frame.Op != rs.op || frame.ID != id || frame.Status != StatusOK {
				t.Fatalf("%T: frame header (%v,%d,%v) != (%v,%d,OK)",
					rs.msg, frame.Op, frame.ID, frame.Status, rs.op, id)
			}
			got := fresh(rs.msg)
			if err := got.Decode(NewDecoder(frame.Body)); err != nil {
				t.Fatalf("%T: decode: %v", rs.msg, err)
			}
			if !bytes.Equal(encoded(got), encoded(rs.msg)) {
				t.Fatalf("%T: round trip changed the message", rs.msg)
			}
			PutBuffer(frame.Body)
		}

		// Error responses round-trip status and message text.
		var ebuf bytes.Buffer
		errText := string(data)
		if len(errText) > 256 {
			errText = errText[:256]
		}
		if err := WriteErrorResponse(&ebuf, OpStore, id, StatusNoSpace, errText); err != nil {
			t.Fatalf("write error response: %v", err)
		}
		frame, err := ReadResponseFrame(bytes.NewReader(ebuf.Bytes()))
		if err != nil {
			t.Fatalf("read error frame: %v", err)
		}
		ferr := frame.Err()
		if !IsStatus(ferr, StatusNoSpace) {
			t.Fatalf("error round trip lost the status: %v", ferr)
		}
		PutBuffer(frame.Body)

		// A busy shed travels as an error frame too: the retryable
		// StatusBusy must survive the trip (the client's backoff logic
		// keys on exactly this status).
		var bbuf bytes.Buffer
		if err := WriteErrorResponse(&bbuf, OpStore, id, StatusBusy, errText); err != nil {
			t.Fatalf("write busy response: %v", err)
		}
		bframe, err := ReadResponseFrame(bytes.NewReader(bbuf.Bytes()))
		if err != nil {
			t.Fatalf("read busy frame: %v", err)
		}
		if berr := bframe.Err(); !IsStatus(berr, StatusBusy) {
			t.Fatalf("busy round trip lost the status: %v", berr)
		}
		PutBuffer(bframe.Body)
	})
}

func FuzzReadResponseFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteResponse(&buf, OpRead, 7, &ReadResponse{Data: []byte("abc")})
	f.Add(buf.Bytes())
	var ebuf bytes.Buffer
	_ = WriteErrorResponse(&ebuf, OpStore, 1, StatusNoSpace, "full")
	f.Add(ebuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		rsp, err := ReadResponseFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = rsp.Err()
		var rr ReadResponse
		_ = rr.Decode(NewDecoder(rsp.Body))
		var lm LastMarkedResponse
		_ = lm.Decode(NewDecoder(rsp.Body))
		var ls ListFIDsResponse
		_ = ls.Decode(NewDecoder(rsp.Body))
	})
}
