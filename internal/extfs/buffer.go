package extfs

import (
	"fmt"
	"sort"

	"swarm/internal/disk"
)

// bufferCache is a write-back cache of file-system blocks, mirroring the
// write-back page cache the paper's modified Linux kernel gave both file
// systems (§3.3). Dirty blocks are written back — in block-number order,
// the kindest schedule an update-in-place file system can hope for — on
// Sync.
type bufferCache struct {
	d         disk.Disk
	blockSize int

	clean map[uint32][]byte
	dirty map[uint32][]byte
	limit int // max cached blocks before forced writeback
}

func newBufferCache(d disk.Disk, blockSize int, limitBytes int64) *bufferCache {
	limit := int(limitBytes / int64(blockSize))
	if limit < 16 {
		limit = 16
	}
	return &bufferCache{
		d:         d,
		blockSize: blockSize,
		clean:     make(map[uint32][]byte),
		dirty:     make(map[uint32][]byte),
		limit:     limit,
	}
}

// get returns block b's contents; the returned slice is the cache's own
// and must not be retained across cache calls by writers (use put).
func (c *bufferCache) get(b uint32) ([]byte, error) {
	if p, ok := c.dirty[b]; ok {
		return p, nil
	}
	if p, ok := c.clean[b]; ok {
		return p, nil
	}
	p := make([]byte, c.blockSize)
	if err := c.d.ReadAt(p, int64(b)*int64(c.blockSize)); err != nil {
		return nil, fmt.Errorf("read block %d: %w", b, err)
	}
	c.clean[b] = p
	c.evictClean()
	return p, nil
}

// getDirty returns block b's contents as a mutable dirty page.
func (c *bufferCache) getDirty(b uint32) ([]byte, error) {
	if p, ok := c.dirty[b]; ok {
		return p, nil
	}
	p, err := c.get(b)
	if err != nil {
		return nil, err
	}
	delete(c.clean, b)
	c.dirty[b] = p
	if len(c.dirty) > c.limit {
		if err := c.flush(); err != nil {
			return nil, err
		}
		c.dirty[b] = p // keep the caller's page available
	}
	return p, nil
}

// putZero installs a fresh zero block (newly allocated: no need to read).
func (c *bufferCache) putZero(b uint32) []byte {
	p := make([]byte, c.blockSize)
	delete(c.clean, b)
	c.dirty[b] = p
	return p
}

func (c *bufferCache) evictClean() {
	for b := range c.clean {
		if len(c.clean) <= c.limit {
			break
		}
		delete(c.clean, b)
	}
}

// flush writes all dirty blocks back in ascending block order.
func (c *bufferCache) flush() error {
	if len(c.dirty) == 0 {
		return nil
	}
	blocks := make([]uint32, 0, len(c.dirty))
	for b := range c.dirty {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		p := c.dirty[b]
		if err := c.d.WriteAt(p, int64(b)*int64(c.blockSize)); err != nil {
			return fmt.Errorf("writeback block %d: %w", b, err)
		}
		delete(c.dirty, b)
		c.clean[b] = p
	}
	c.evictClean()
	return c.d.Sync()
}

// drop removes a block from the cache without writeback (freed blocks).
func (c *bufferCache) drop(b uint32) {
	delete(c.dirty, b)
	delete(c.clean, b)
}
