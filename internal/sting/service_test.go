package sting

import (
	"bytes"
	"testing"

	"swarm/internal/core"
	"swarm/internal/vfs"
)

// These tests exercise Sting's service-facing surface directly: block
// liveness answers for the cleaner, move notifications, and checkpoint
// demands.

func TestBlockLiveAnswers(t *testing.T) {
	e := newEnv(t, 2)
	defer e.fs.Unmount()
	if err := vfs.WriteFile(e.fs, "/f", bytes.Repeat([]byte{1}, 3*testBlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Find the file's inode and block addresses.
	e.fs.mu.Lock()
	root, err := e.fs.loadInode(RootIno)
	if err != nil {
		e.fs.mu.Unlock()
		t.Fatal(err)
	}
	ino := root.entries["f"].ino
	in, err := e.fs.loadInode(ino)
	if err != nil {
		e.fs.mu.Unlock()
		t.Fatal(err)
	}
	dataAddr := in.blocks[1].addr
	inodeAddr := e.fs.imap[ino].addr
	e.fs.mu.Unlock()

	// Live data block and live inode block answer true.
	if !e.fs.BlockLive(dataAddr, encodeDataHint(ino, 1, in.size)) {
		t.Fatal("live data block reported dead")
	}
	if !e.fs.BlockLive(inodeAddr, encodeInodeHint(ino)) {
		t.Fatal("live inode block reported dead")
	}
	// A stale address answers false.
	stale := core.BlockAddr{FID: dataAddr.FID, Off: dataAddr.Off + 1}
	if e.fs.BlockLive(stale, encodeDataHint(ino, 1, in.size)) {
		t.Fatal("stale data address reported live")
	}
	// Unparseable hints answer true (safe default).
	if !e.fs.BlockLive(dataAddr, []byte{0xFF}) {
		t.Fatal("garbage hint reported dead")
	}
	// After unlink, everything is dead.
	if err := e.fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if e.fs.BlockLive(dataAddr, encodeDataHint(ino, 1, in.size)) {
		t.Fatal("unlinked file's data reported live")
	}
	if e.fs.BlockLive(inodeAddr, encodeInodeHint(ino)) {
		t.Fatal("unlinked file's inode reported live")
	}
}

func TestBlockMovedRebindsMetadata(t *testing.T) {
	e := newEnv(t, 2)
	defer e.fs.Unmount()
	content := bytes.Repeat([]byte{7}, 2*testBlockSize)
	if err := vfs.WriteFile(e.fs, "/f", content); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	e.fs.mu.Lock()
	root, _ := e.fs.loadInode(RootIno)
	ino := root.entries["f"].ino
	in, _ := e.fs.loadInode(ino)
	old := in.blocks[0]
	size := in.size
	e.fs.mu.Unlock()

	// Pretend the cleaner moved block 0.
	newAddr := core.BlockAddr{FID: old.addr.FID, Off: old.addr.Off + 12345}
	if err := e.fs.BlockMoved(old.addr, newAddr, old.len, encodeDataHint(ino, 0, size)); err != nil {
		t.Fatal(err)
	}
	e.fs.mu.Lock()
	in, _ = e.fs.loadInode(ino)
	got := in.blocks[0].addr
	dirty := e.fs.dirtyIno[ino]
	e.fs.mu.Unlock()
	if got != newAddr {
		t.Fatalf("block not rebound: %v", got)
	}
	if !dirty {
		t.Fatal("inode not marked dirty after move")
	}
	// Moving with a stale old address is a no-op.
	if err := e.fs.BlockMoved(old.addr, core.BlockAddr{}, old.len, encodeDataHint(ino, 0, size)); err != nil {
		t.Fatal(err)
	}
	e.fs.mu.Lock()
	in, _ = e.fs.loadInode(ino)
	still := in.blocks[0].addr
	e.fs.mu.Unlock()
	if still != newAddr {
		t.Fatal("stale move overwrote current binding")
	}
	// Moving an inode block rebinds the imap.
	e.fs.mu.Lock()
	oldIno := e.fs.imap[ino]
	e.fs.mu.Unlock()
	newInoAddr := core.BlockAddr{FID: oldIno.addr.FID, Off: oldIno.addr.Off + 7}
	if err := e.fs.BlockMoved(oldIno.addr, newInoAddr, oldIno.size, encodeInodeHint(ino)); err != nil {
		t.Fatal(err)
	}
	e.fs.mu.Lock()
	got2 := e.fs.imap[ino].addr
	e.fs.mu.Unlock()
	if got2 != newInoAddr {
		t.Fatalf("imap not rebound: %v", got2)
	}
}

func TestCheckpointDemandWritesCheckpoint(t *testing.T) {
	e := newEnv(t, 2)
	if err := vfs.WriteFile(e.fs, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.log.Checkpoint(e.fs.ID()); ok {
		t.Fatal("checkpoint exists before demand")
	}
	if err := e.fs.CheckpointDemand(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.log.Checkpoint(e.fs.ID()); !ok {
		t.Fatal("no checkpoint after demand")
	}
	// Demands after unmount are quietly ignored (the service is gone).
	if err := e.fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.CheckpointDemand(); err != nil {
		t.Fatalf("demand after unmount: %v", err)
	}
}

func TestReplayRejectsGarbageRecords(t *testing.T) {
	e := newEnv(t, 2)
	defer e.fs.Unmount()
	if err := e.fs.Replay(core.ReplayEntry{Kind: core.EntryRecord, Payload: []byte{99, 0, 0, 0, 0, 0, 0, 0, 0}}); err == nil {
		t.Fatal("garbage unlink record accepted")
	}
	if err := e.fs.Replay(core.ReplayEntry{Kind: core.EntryCreate, Payload: []byte{1}}); err == nil {
		t.Fatal("garbage create record accepted")
	}
	// Delete records are ignored without error.
	if err := e.fs.Replay(core.ReplayEntry{Kind: core.EntryDelete, Payload: nil}); err != nil {
		t.Fatal(err)
	}
}
