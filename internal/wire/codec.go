package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec errors.
var (
	// ErrShortBuffer is returned when a decode runs out of bytes.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrTooLarge is returned when a length field exceeds sane limits.
	ErrTooLarge = errors.New("wire: length too large")
)

// maxSlice bounds decoded slice lengths to defend against corrupt or
// hostile frames (fragments are at most a few MB).
const maxSlice = 64 << 20

// Encoder serializes primitive values into a growing little-endian buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Raw appends bytes with no length prefix.
func (e *Encoder) Raw(p []byte) { e.buf = append(e.buf, p...) }

// Bytes32 appends a uint32 length prefix followed by the bytes.
func (e *Encoder) Bytes32(p []byte) {
	e.U32(uint32(len(p)))
	e.buf = append(e.buf, p...)
}

// String32 appends a uint32 length prefix followed by the string bytes.
func (e *Encoder) String32(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder consumes primitive values from a byte slice. Decoding methods
// record the first error; callers check Err (or use the returned zero
// values, which are safe).
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over p. The decoder does not copy p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

// U8 consumes one byte.
func (d *Decoder) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 consumes a little-endian uint16.
func (d *Decoder) U16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 consumes a little-endian uint32.
func (d *Decoder) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 consumes a little-endian uint64.
func (d *Decoder) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Bool consumes one byte as a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes32 consumes a uint32-length-prefixed byte slice. The result aliases
// the decoder's buffer; callers that retain it must copy.
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxSlice {
		d.err = fmt.Errorf("%w: %d", ErrTooLarge, n)
		return nil
	}
	return d.take(int(n))
}

// String32 consumes a uint32-length-prefixed string.
func (d *Decoder) String32() string { return string(d.Bytes32()) }
