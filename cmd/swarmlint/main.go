// Command swarmlint runs Swarm's project-specific static analyzers
// over the repository: buffer-pool ownership (bufpool), lock/I-O
// discipline (lockio), guarded-field locking (guardedby), error
// classification (errclass), placement indexing (placement), extent
// reference counting (refcount), wire.Status exhaustiveness
// (statuscase), mixed atomic/plain field access (atomicmix), and
// goroutine lifecycle (goroleak). See internal/lint and DESIGN.md §7.
//
// Usage:
//
//	swarmlint [-only name,name] [-list] [-v] [packages]
//
// Packages default to ./... relative to the enclosing module. The
// analyzers run in parallel; -v prints per-analyzer wall-clock timing
// (slowest first) to stderr. Exit status is 0 when clean, 1 when
// diagnostics were reported, and 2 when loading or type-checking
// failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"swarm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI contract —
// exit codes, diagnostic format, -list output — is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swarmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve the module from")
	verbose := fs.Bool("v", false, "print per-analyzer timing to stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: swarmlint [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(analyzers, strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(stderr, "swarmlint:", err)
			return 2
		}
	}

	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "swarmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "swarmlint:", err)
		return 2
	}
	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintln(stderr, "swarmlint:", err)
		return 2
	}

	diags, timings := lint.RunParallel(pkgs, analyzers)
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "swarmlint: %-10s %8.1fms\n", tm.Analyzer, float64(tm.Elapsed.Microseconds())/1000)
		}
	}
	for _, d := range diags {
		// Print paths relative to the module root when possible: stable
		// output for CI logs regardless of checkout location.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "swarmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
