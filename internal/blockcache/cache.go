// Package blockcache implements the client-side caching service the
// paper lists among the services layered on the log (§2.2) and leans on
// in the evaluation: "we expect most reads to be handled by the client
// cache" and "Swarm's poor read performance is masked by the client-side
// cache" (§3.4). The cache intercepts reads between a service and the
// log, holding whole blocks in an LRU keyed by block address.
//
// Misses fall through to the Reader below (normally *core.Log), whose
// reads — including fragment-grained readahead — are issued through the
// log's fragment I/O engine (internal/fragio), so cache fills share the
// same per-server queues, parallel fan-out, and reconstruction
// deduplication as every other fetch path.
package blockcache

import (
	"container/list"
	"sync"

	"swarm/internal/core"
)

// Reader is the read interface the cache sits on top of (satisfied by
// *core.Log).
type Reader interface {
	Read(addr core.BlockAddr, off, n uint32) ([]byte, error)
}

// Cache is an LRU block cache.
type Cache struct {
	lower    Reader
	capBytes int64

	mu    sync.Mutex
	bytes int64
	lru   *list.List // front = most recent; values are *cacheEntry
	index map[core.BlockAddr]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	addr core.BlockAddr
	data []byte
}

// New returns a cache over lower holding at most capBytes of block data.
func New(lower Reader, capBytes int64) *Cache {
	return &Cache{
		lower:    lower,
		capBytes: capBytes,
		lru:      list.New(),
		index:    make(map[core.BlockAddr]*list.Element),
	}
}

// ReadBlock returns n bytes at off within the block at addr, whose total
// length is blockLen. A miss fetches and caches the whole block, the
// behaviour that makes rereads free.
func (c *Cache) ReadBlock(addr core.BlockAddr, blockLen, off, n uint32) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.index[addr]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.hits++
		if int(off+n) > len(ent.data) {
			c.mu.Unlock()
			// Stale or short entry: fall through to the log.
			return c.lower.Read(addr, off, n)
		}
		out := make([]byte, n)
		copy(out, ent.data[off:off+n])
		c.mu.Unlock()
		return out, nil
	}
	c.misses++
	c.mu.Unlock()

	data, err := c.lower.Read(addr, 0, blockLen)
	if err != nil {
		return nil, err
	}
	c.Put(addr, data)
	if int(off+n) > len(data) {
		return c.lower.Read(addr, off, n)
	}
	out := make([]byte, n)
	copy(out, data[off:off+n])
	return out, nil
}

// Put inserts (or refreshes) a block. Writers use it to warm the cache
// with data they just appended.
func (c *Cache) Put(addr core.BlockAddr, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[addr]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(cp)) - int64(len(ent.data))
		ent.data = cp
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&cacheEntry{addr: addr, data: cp})
		c.index[addr] = el
		c.bytes += int64(len(cp))
	}
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	for c.bytes > c.capBytes && c.lru.Len() > 0 {
		el := c.lru.Back()
		ent := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.index, ent.addr)
		c.bytes -= int64(len(ent.data))
	}
}

// Invalidate removes a block (e.g. after the owner deletes it or the
// cleaner moves it).
func (c *Cache) Invalidate(addr core.BlockAddr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[addr]; ok {
		ent := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.index, addr)
		c.bytes -= int64(len(ent.data))
	}
}

// Stats reports hit/miss counts and current occupancy.
func (c *Cache) Stats() (hits, misses, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.bytes
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
