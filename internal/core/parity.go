package core

import (
	"encoding/binary"

	"swarm/internal/erasure"
)

// XORInto accumulates src into dst (dst ^= src). src may be shorter than
// dst; missing bytes are treated as zero, which is exactly the padding
// rule for short fragments in a stripe.
func XORInto(dst, src []byte) {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	dst = dst[:n]
	src = src[:n]
	// Word-at-a-time for the bulk; parity runs over every data byte
	// written, so this is the client's hottest loop.
	for len(dst) >= 8 {
		d := binary.LittleEndian.Uint64(dst)
		s := binary.LittleEndian.Uint64(src)
		binary.LittleEndian.PutUint64(dst, d^s)
		dst = dst[8:]
		src = src[8:]
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// parityAccum incrementally computes a stripe's parity payloads as data
// fragments are sealed, so parity is ready the moment the stripe closes
// ("a stripe's parity is computed as its fragments are written", §2.1.2).
// With the erasure layer a stripe carries m parity buffers; the classic
// single rotating XOR parity is the m=1 case.
type parityAccum struct {
	code    erasure.Code
	bufs    [][]byte // m accumulators, each payloadSize bytes
	lens    [MaxWidth]uint32
	members int
}

func newParityAccum(code erasure.Code, payloadSize int) *parityAccum {
	p := &parityAccum{code: code, bufs: make([][]byte, code.ParityShards())}
	for j := range p.bufs {
		p.bufs[j] = make([]byte, payloadSize)
	}
	return p
}

// add folds one sealed data payload into the accumulators. index is the
// member's position within the stripe; di is its data-shard ordinal
// (rank among the stripe's non-parity slots).
func (p *parityAccum) add(di, index int, payload []byte) {
	p.code.AddData(di, payload, p.bufs)
	p.lens[index] = uint32(len(payload))
	p.members++
}

// reset clears the accumulator for the next stripe.
func (p *parityAccum) reset() {
	for _, buf := range p.bufs {
		for i := range buf {
			buf[i] = 0
		}
	}
	p.lens = [MaxWidth]uint32{}
	p.members = 0
}

// ReconstructPayload rebuilds one missing member's payload from the
// parity payload and the other members' payloads. The caller passes the
// missing member's data length (from the parity header's MemberLens).
func ReconstructPayload(parity []byte, others [][]byte, missingLen uint32) []byte {
	out := make([]byte, len(parity))
	copy(out, parity)
	for _, p := range others {
		XORInto(out, p)
	}
	return out[:missingLen]
}
