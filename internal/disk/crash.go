package disk

import (
	"errors"
	"sync"
)

// ErrCrashed is returned by every operation on a CrashDisk after a
// simulated power cut.
var ErrCrashed = errors.New("disk: simulated power failure")

// CrashDisk wraps a Disk and models a volatile write cache: WriteAt
// buffers in memory, Sync flushes the buffer to the backing disk (and
// syncs it), and Crash simulates a power cut — everything written but
// not yet synced is dropped, and the disk refuses further I/O. Tests use
// it to prove crash-atomicity invariants: after Crash, the backing disk
// holds exactly the state an acknowledged sync made durable.
//
// Reads see buffered writes (read-your-writes), like a real drive cache.
// Sync is atomic with respect to Crash: a Sync that returned nil
// happened entirely before any Crash, so its writes survive.
type CrashDisk struct {
	mu      sync.Mutex
	backing Disk
	pending []crashWrite // guarded by mu
	crashed bool         // guarded by mu
	syncs   int64        // guarded by mu
}

type crashWrite struct {
	off  int64
	data []byte
}

var _ Disk = (*CrashDisk)(nil)

// NewCrashDisk wraps backing with a volatile write buffer.
func NewCrashDisk(backing Disk) *CrashDisk {
	return &CrashDisk{backing: backing}
}

// ReadAt implements Disk: the backing bytes overlaid with every pending
// (unsynced) write, oldest first.
func (d *CrashDisk) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if err := d.backing.ReadAt(p, off); err != nil {
		return err
	}
	end := off + int64(len(p))
	for _, w := range d.pending {
		wEnd := w.off + int64(len(w.data))
		if wEnd <= off || w.off >= end {
			continue
		}
		// Overlap [lo,hi) in absolute disk coordinates.
		lo, hi := max(off, w.off), min(end, wEnd)
		copy(p[lo-off:hi-off], w.data[lo-w.off:hi-w.off])
	}
	return nil
}

// WriteAt implements Disk, buffering the write in volatile memory.
func (d *CrashDisk) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if err := checkRange(d.backing.Size(), len(p), off); err != nil {
		return err
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	d.pending = append(d.pending, crashWrite{off: off, data: buf})
	return nil
}

// Sync implements Disk: every buffered write becomes durable, in order.
func (d *CrashDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	for _, w := range d.pending {
		if err := d.backing.WriteAt(w.data, w.off); err != nil {
			return err
		}
	}
	d.pending = nil
	d.syncs++
	return d.backing.Sync()
}

// Size implements Disk.
func (d *CrashDisk) Size() int64 { return d.backing.Size() }

// Close implements Disk. The backing disk stays open so tests can
// reopen the durable image.
func (d *CrashDisk) Close() error { return nil }

// Crash simulates a power cut: all unsynced writes vanish and further
// I/O fails with ErrCrashed. The backing disk (see Backing) is left with
// exactly the durable image.
func (d *CrashDisk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending = nil
	d.crashed = true
}

// Backing returns the disk holding the durable image — what a recovery
// path should reopen after Crash.
func (d *CrashDisk) Backing() Disk { return d.backing }

// Syncs reports how many Sync calls completed (test instrumentation).
func (d *CrashDisk) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// PendingWrites reports how many buffered writes await a Sync.
func (d *CrashDisk) PendingWrites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}
