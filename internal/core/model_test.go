package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRandomizedLogModel drives the log with a random operation mix —
// appends, deletes, records, checkpoints, syncs, server failures, and
// client crashes — and checks it against an in-memory model after every
// recovery: every block the model says is durable must read back intact,
// and replay must deliver exactly the post-checkpoint records.
func TestRandomizedLogModel(t *testing.T) {
	seeds, stepsN := int64(5), 120
	if !testing.Short() {
		seeds, stepsN = 10, 300
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			runLogModel(t, rand.New(rand.NewSource(seed)), stepsN)
		})
	}
}

type modelBlock struct {
	addr    BlockAddr
	data    []byte
	durable bool
}

func runLogModel(t *testing.T, rng *rand.Rand, steps int) {
	t.Helper()
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	const svc = ServiceID(7)

	var (
		blocks  []*modelBlock // live blocks, in append order
		records []string      // service records appended since last checkpoint (durable or not)
		durRecs []string      // durable post-checkpoint records
		ckpt    []byte        // last checkpoint payload
	)

	markDurable := func() {
		for _, b := range blocks {
			b.durable = true
		}
		durRecs = append([]string(nil), records...)
	}

	verifyDurable := func() {
		for i, b := range blocks {
			if !b.durable {
				continue
			}
			got, err := l.Read(b.addr, 0, uint32(len(b.data)))
			if err != nil {
				t.Fatalf("durable block %d (%v) unreadable: %v", i, b.addr, err)
			}
			if !bytes.Equal(got, b.data) {
				t.Fatalf("durable block %d (%v) corrupted", i, b.addr)
			}
		}
	}

	crash := func() {
		// Reopen; verify checkpoint + replayed records match the model.
		l2, rec := c.open(t, Config{})
		svcRec := rec.Service(svc)
		if ckpt != nil {
			if !svcRec.HasCheckpoint || !bytes.Equal(svcRec.Checkpoint, ckpt) {
				t.Fatalf("checkpoint mismatch: got %q (has=%v), want %q",
					svcRec.Checkpoint, svcRec.HasCheckpoint, ckpt)
			}
		}
		var replayed []string
		for _, r := range svcRec.Records {
			if r.Kind == EntryRecord {
				replayed = append(replayed, string(r.Payload))
			}
		}
		// Replay must deliver at least the records that were explicitly
		// made durable, possibly more (fragments seal and ship on their
		// own as they fill), and always in order: replayed must extend
		// durRecs and be a prefix of everything appended.
		if len(replayed) < len(durRecs) {
			t.Fatalf("replayed %d records, want >= %d (%v vs %v)", len(replayed), len(durRecs), replayed, durRecs)
		}
		if len(replayed) > len(records) {
			t.Fatalf("replayed %d records, only %d were ever appended", len(replayed), len(records))
		}
		for i := range replayed {
			if replayed[i] != records[i] {
				t.Fatalf("record %d = %q, want %q", i, replayed[i], records[i])
			}
		}
		durRecs = append([]string(nil), replayed...)
		// Undurable blocks are forgotten by the model (their writes never
		// happened as far as a recovered client is concerned).
		kept := blocks[:0]
		for _, b := range blocks {
			if b.durable {
				kept = append(kept, b)
			}
		}
		blocks = kept
		records = append([]string(nil), durRecs...)
		l = l2
		verifyDurable()
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 45: // append a block
			n := rng.Intn(900) + 1
			data := make([]byte, n)
			rng.Read(data)
			addr, err := l.AppendBlock(svc, data, []byte{byte(step)})
			if err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
			blocks = append(blocks, &modelBlock{addr: addr, data: data})

		case op < 60: // append a service record
			payload := []byte{byte(step), byte(step >> 8), 0xAB}
			if _, err := l.AppendRecord(svc, payload); err != nil {
				t.Fatalf("step %d record: %v", step, err)
			}
			records = append(records, string(payload))

		case op < 70: // delete a random live block
			if len(blocks) == 0 {
				continue
			}
			i := rng.Intn(len(blocks))
			b := blocks[i]
			if err := l.DeleteBlock(b.addr, uint32(len(b.data)), svc); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			blocks = append(blocks[:i], blocks[i+1:]...)

		case op < 80: // sync: everything becomes durable
			if err := l.Sync(); err != nil {
				t.Fatalf("step %d sync: %v", step, err)
			}
			markDurable()
			verifyDurable()

		case op < 88: // checkpoint: durable + clears the replay set
			ckpt = []byte{0xCC, byte(step)}
			if _, err := l.WriteCheckpoint(svc, ckpt); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
			markDurable()
			records = nil
			durRecs = nil

		case op < 94: // transient single-server failure during reads
			if err := l.Sync(); err != nil {
				t.Fatalf("step %d sync: %v", step, err)
			}
			markDurable()
			k := rng.Intn(len(c.flaky))
			c.flaky[k].SetDown(true)
			verifyDurable()
			c.flaky[k].SetDown(false)

		default: // client crash + recovery
			crash()
		}
	}
	crash()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
