// Package placement is a swarmlint test fixture: each function
// exercises one placement-analyzer behavior, with expected diagnostics
// declared in want comments.
package placement

import (
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// conns is the fixture's server slice.
type pool struct {
	conns []transport.ServerConn
}

// namedSlice is a defined type over the connection slice; the analyzer
// sees through the name.
type namedSlice []transport.ServerConn

func directIndex(conns []transport.ServerConn, stripe, slot int) transport.ServerConn {
	return conns[(stripe+slot)%len(conns)] // want "placement is epoch-dependent"
}

func fieldIndex(p *pool, i int) transport.ServerConn {
	return p.conns[i] // want "placement is epoch-dependent"
}

func namedIndex(ns namedSlice, i int) transport.ServerConn {
	return ns[i] // want "placement is epoch-dependent"
}

func assignIndex(conns []transport.ServerConn, sc transport.ServerConn) {
	conns[0] = sc // want "placement is epoch-dependent"
}

func annotated(conns []transport.ServerConn) transport.ServerConn {
	return conns[0] // swarmlint:placement-ok (arbitrary probe connection, not a placement decision)
}

func ranging(conns []transport.ServerConn, fid wire.FID) int {
	// Enumeration names no slot; it is how broadcasts and surveys work.
	n := 0
	for _, sc := range conns {
		if _, ok, err := sc.Has(fid); err == nil && ok {
			n++
		}
	}
	return n
}

func otherSlices(ids []wire.ServerID, i int) wire.ServerID {
	// Indexing non-connection slices is out of scope.
	return ids[i]
}

func slicing(conns []transport.ServerConn, i int) []transport.ServerConn {
	// Slicing (compaction, snapshots) is not slot resolution.
	return append(conns[:i:i], conns[i+1:]...)
}
