// Package lockio is a swarmlint test fixture: each method exercises one
// lockio-analyzer behavior, with expected diagnostics declared in want
// comments.
package lockio

import (
	"net"
	"sync"

	"swarm/internal/disk"
)

type srv struct {
	mu sync.Mutex
	d  disk.Disk
	c  net.Conn
	n  int

	// wlock serializes writes to c. swarmlint:io-mutex
	wlock sync.Mutex
}

func (s *srv) badSync() {
	s.mu.Lock()
	s.d.Sync() // want "disk I/O"
	s.mu.Unlock()
}

func (s *srv) badWrite(p []byte) error {
	s.mu.Lock()
	err := s.d.WriteAt(p, 0) // want "disk I/O"
	s.mu.Unlock()
	return err
}

func (s *srv) badDeferred() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.c.Write(nil) // want "network I/O"
	return err
}

func (s *srv) badHelper() {
	s.mu.Lock()
	frame(s.c) // want "network I/O"
	s.mu.Unlock()
}

func (s *srv) badNested(cond bool) {
	s.mu.Lock()
	if cond {
		s.d.Sync() // want "disk I/O"
	}
	s.mu.Unlock()
}

func (s *srv) badLateLock(cond bool) {
	if cond {
		s.mu.Lock()
		s.d.Sync() // want "disk I/O"
		s.mu.Unlock()
	}
}

func frame(c net.Conn) { c.Write(nil) }

func (s *srv) goodAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.d.Sync()
}

func (s *srv) goodCloseUnderLock() {
	// Close is teardown, not blocking I/O.
	s.mu.Lock()
	s.c.Close()
	s.mu.Unlock()
}

func (s *srv) goodWriteMutex() {
	// wlock exists to serialize writes; I/O under it is its purpose.
	s.wlock.Lock()
	s.c.Write(nil)
	s.wlock.Unlock()
}

// goodAnnotatedFunc is a deliberate ablation baseline. swarmlint:locked-io
func (s *srv) goodAnnotatedFunc() {
	s.mu.Lock()
	s.d.Sync()
	s.mu.Unlock()
}

func (s *srv) goodAnnotatedStmt() {
	s.mu.Lock()
	s.d.Sync() // swarmlint:locked-io
	s.mu.Unlock()
}

func (s *srv) goodGoroutine() {
	// The spawned body runs after the region; it is not flagged.
	s.mu.Lock()
	go func() { s.d.Sync() }()
	s.mu.Unlock()
}
