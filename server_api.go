package swarm

import (
	"fmt"
	"log"
	"time"

	"swarm/internal/disk"
	"swarm/internal/server"
)

// ServerOptions configures one storage server.
type ServerOptions struct {
	// DiskPath backs the server with a file; empty uses memory.
	DiskPath string
	// DiskBytes is the disk capacity. Default 256 MB.
	DiskBytes int64
	// FragmentSize is the fragment slot size. Default 1 MB, matching
	// the paper's prototype. All servers of a cluster and all clients
	// must agree on it.
	FragmentSize int
	// Listen, when non-empty, serves the wire protocol on this TCP
	// address (e.g. "127.0.0.1:0").
	Listen string
	// Logger receives server diagnostics (nil discards).
	Logger *log.Logger
	// Reuse opens an existing formatted disk instead of formatting.
	Reuse bool
	// CommitDelay is the group-commit coalescing window: how long a
	// store commit lingers for concurrent commits to share its fsync.
	// Zero (the default, right for fast local disks) coalesces only
	// opportunistically; see README, "Tuning the coalescing window".
	CommitDelay time.Duration
	// ReadCacheBytes sizes the server's fragment-extent read cache
	// (DESIGN.md §3.13). Zero uses the default (64 MB); negative
	// disables caching entirely.
	ReadCacheBytes int64
	// ReadaheadFragments is how many upcoming fragments a cache hit
	// prefetches off the same disk pass. Zero uses the default (4);
	// negative disables readahead.
	ReadaheadFragments int
	// QoS, when non-nil, enables the multi-tenant weighted-fair
	// scheduler with quotas and admission control (DESIGN.md §3.14).
	// Nil (the default) keeps the FIFO request path. See README,
	// "Multi-tenant tuning".
	QoS *server.QoSConfig
}

// Server is one Swarm storage server: a fragment repository on a disk,
// optionally exported over TCP.
type Server struct {
	store *server.Store
	tcp   *server.TCPServer
	d     disk.Disk
}

// NewServer creates (or reopens) a storage server.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.DiskBytes == 0 {
		opts.DiskBytes = 256 << 20
	}
	if opts.FragmentSize == 0 {
		opts.FragmentSize = server.DefaultFragmentSize
	}
	var (
		d   disk.Disk
		err error
	)
	if opts.DiskPath != "" {
		d, err = disk.OpenFileDisk(opts.DiskPath, opts.DiskBytes)
		if err != nil {
			return nil, err
		}
	} else {
		d = disk.NewMemDisk(opts.DiskBytes)
	}
	var st *server.Store
	if opts.Reuse {
		st, err = server.Open(d)
	} else {
		st, err = server.Format(d, server.Config{FragmentSize: opts.FragmentSize})
	}
	if err != nil {
		d.Close()
		return nil, err
	}
	if opts.CommitDelay > 0 {
		st.SetCommitDelay(opts.CommitDelay)
	}
	cacheBytes := opts.ReadCacheBytes
	if cacheBytes == 0 {
		cacheBytes = server.DefaultReadCacheBytes
	}
	readahead := opts.ReadaheadFragments
	if readahead == 0 {
		readahead = server.DefaultReadahead
	}
	if readahead < 0 {
		readahead = 0
	}
	if cacheBytes > 0 {
		st.SetReadCache(cacheBytes, readahead)
	}
	if opts.QoS != nil {
		st.SetQoS(*opts.QoS)
	}
	s := &Server{store: st, d: d}
	if opts.Listen != "" {
		s.tcp, err = server.ListenAndServe(st, opts.Listen, opts.Logger)
		if err != nil {
			d.Close()
			return nil, err
		}
	}
	return s, nil
}

// Addr returns the TCP listen address, or "" for in-process servers.
func (s *Server) Addr() string {
	if s.tcp == nil {
		return ""
	}
	return s.tcp.Addr()
}

// Stats describes the server's slot occupancy.
func (s *Server) Stats() (fragmentSize, totalSlots, freeSlots, fragments int) {
	st := s.store.Stats()
	return st.FragmentSize, st.TotalSlots, st.FreeSlots, st.Fragments
}

// Close stops serving and releases the disk. It also stops the store's
// background readahead worker — without this, every server restart
// (the chaos harness does hundreds per run) leaked one goroutine parked
// on the prefetch queue forever.
func (s *Server) Close() error {
	var err error
	if s.tcp != nil {
		err = s.tcp.Close()
	}
	s.store.Close()
	if cerr := s.d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) String() string {
	return fmt.Sprintf("swarm.Server(%s)", s.Addr())
}
