package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"swarm/internal/wire"
)

// ErrNoACL is returned for operations on an unknown AID.
var ErrNoACL = errors.New("server: no such ACL")

// ACLDB is the server's access-control database (§2.3.2): ACLs indexed by
// AID, each a set of client IDs permitted to read and write byte ranges
// tagged with that AID. Once data is stored its AID cannot change; access
// is adjusted by changing ACL membership, which makes adding a new client
// with the privileges of existing clients a pure membership operation.
//
// The paper's prototype did not implement ACLs; this is the design from
// the paper implemented in full, including persistence: the store gives
// the database an onChange hook that writes it into a reserved disk
// region, so protections survive server restarts.
type ACLDB struct {
	mu    sync.RWMutex
	next  wire.AID
	lists map[wire.AID]map[wire.ClientID]bool
	// onChange, when set, persists the database after every mutation
	// (called with mu held to keep the persisted image consistent).
	onChange func() error
}

// NewACLDB returns an empty ACL database.
func NewACLDB() *ACLDB {
	return &ACLDB{next: 1, lists: make(map[wire.AID]map[wire.ClientID]bool)}
}

// encodeLocked serializes the database. Caller holds mu.
func (db *ACLDB) encodeLocked() []byte {
	e := wire.NewEncoder(64)
	e.U32(uint32(db.next))
	e.U32(uint32(len(db.lists)))
	aids := make([]wire.AID, 0, len(db.lists))
	for aid := range db.lists {
		aids = append(aids, aid)
	}
	sort.Slice(aids, func(i, j int) bool { return aids[i] < aids[j] })
	for _, aid := range aids {
		set := db.lists[aid]
		e.U32(uint32(aid))
		e.U32(uint32(len(set)))
		members := make([]wire.ClientID, 0, len(set))
		for m := range set {
			members = append(members, m)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, m := range members {
			e.U32(uint32(m))
		}
	}
	return e.Bytes()
}

// decodeInto replaces the database contents from an encoded image.
func (db *ACLDB) decodeInto(p []byte) error {
	d := wire.NewDecoder(p)
	next := wire.AID(d.U32())
	n := d.U32()
	lists := make(map[wire.AID]map[wire.ClientID]bool, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		aid := wire.AID(d.U32())
		nm := d.U32()
		set := make(map[wire.ClientID]bool, nm)
		for j := uint32(0); j < nm && d.Err() == nil; j++ {
			set[wire.ClientID(d.U32())] = true
		}
		lists[aid] = set
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("acl database: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.next = next
	if db.next == 0 {
		db.next = 1
	}
	db.lists = lists
	return nil
}

func (db *ACLDB) changed() error {
	if db.onChange == nil {
		return nil
	}
	return db.onChange()
}

// Create allocates a new ACL with the given members and returns its AID.
func (db *ACLDB) Create(members []wire.ClientID) wire.AID {
	db.mu.Lock()
	defer db.mu.Unlock()
	aid := db.next
	db.next++
	set := make(map[wire.ClientID]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	db.lists[aid] = set
	_ = db.changed() // persistence is best-effort; protection stands
	return aid
}

// Modify adds and removes members of an existing ACL.
func (db *ACLDB) Modify(aid wire.AID, add, remove []wire.ClientID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	set, ok := db.lists[aid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoACL, aid)
	}
	for _, m := range add {
		set[m] = true
	}
	for _, m := range remove {
		delete(set, m)
	}
	return db.changed()
}

// Delete removes an ACL. Ranges still tagged with the AID become
// inaccessible until the AID is recreated (AIDs are never reused within a
// database's lifetime, so recreation cannot happen accidentally).
func (db *ACLDB) Delete(aid wire.AID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.lists[aid]; !ok {
		return fmt.Errorf("%w: %d", ErrNoACL, aid)
	}
	delete(db.lists, aid)
	return db.changed()
}

// Allowed reports whether client is a member of ACL aid. AID 0 means
// "unprotected" and always allows access; an unknown AID denies.
func (db *ACLDB) Allowed(aid wire.AID, client wire.ClientID) bool {
	if aid == 0 {
		return true
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	set, ok := db.lists[aid]
	return ok && set[client]
}

// Members returns a copy of an ACL's membership.
func (db *ACLDB) Members(aid wire.AID) ([]wire.ClientID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set, ok := db.lists[aid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoACL, aid)
	}
	out := make([]wire.ClientID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	return out, nil
}
