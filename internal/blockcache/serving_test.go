package blockcache

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"swarm/internal/core"
)

// gatedReader blocks every Read until the gate opens, and counts the
// reads that actually reached it — the instrument for proving
// singleflight collapses concurrent misses into one fill.
type gatedReader struct {
	gate  chan struct{}
	reads atomic.Int64
	data  []byte
}

func (g *gatedReader) Read(addr core.BlockAddr, off, n uint32) ([]byte, error) {
	g.reads.Add(1)
	<-g.gate
	out := make([]byte, n)
	copy(out, g.data[off:off+n])
	return out, nil
}

// TestSingleflightOneFill is the regression test for the N-identical-fills
// bug: N concurrent readers of one uncached block must produce exactly one
// lower-level read, with every reader receiving the shared result.
func TestSingleflightOneFill(t *testing.T) {
	const readers = 32
	g := &gatedReader{gate: make(chan struct{}), data: bytes.Repeat([]byte{7}, 128)}
	c := New(g, 1<<20)

	var wg sync.WaitGroup
	results := make([][]byte, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.ReadBlock(addr(0), 128, 0, 128)
		}(i)
	}
	// Wait until the first (and only) fill is parked in the lower reader,
	// then let it finish. The remaining readers must be queued on the
	// flight, not in the reader.
	for g.reads.Load() == 0 {
		runtime.Gosched()
	}
	close(g.gate)
	wg.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], g.data) {
			t.Fatalf("reader %d: data mismatch", i)
		}
	}
	if n := g.reads.Load(); n != 1 {
		t.Fatalf("lower reads = %d, want 1 (singleflight broken)", n)
	}
	if f := c.Fills(); f != 1 {
		t.Fatalf("fills = %d, want 1", f)
	}
	// Readers scheduled after the fill completed count as hits; everyone
	// else as a miss. Either way the total adds up and only one filled.
	hits, misses, _ := c.Stats()
	if hits+misses != readers {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, readers)
	}
}

// TestSingleflightErrorShared: a failing fill must propagate its error to
// every waiter and leave no flight entry behind.
func TestSingleflightErrorShared(t *testing.T) {
	f := newFake(0, 0) // empty lower: every read errors
	c := New(f, 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.ReadBlock(addr(3), 64, 0, 64); err == nil {
				t.Error("missing block read succeeded")
			}
		}()
	}
	wg.Wait()
	c.flightMu.Lock()
	n := len(c.flights)
	c.flightMu.Unlock()
	if n != 0 {
		t.Fatalf("%d flights leaked", n)
	}
}

// TestHitPathZeroAlloc pins the hot-hit path at zero allocations: a hit
// returns a subslice of the cached block, nothing else.
func TestHitPathZeroAlloc(t *testing.T) {
	f := newFake(1, 4096)
	c := New(f, 1<<20)
	if _, err := c.ReadBlock(addr(0), 4096, 0, 4096); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.ReadBlock(addr(0), 4096, 0, 4096); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// prefetchReader records Prefetch calls so the sequential-miss detector
// can be observed.
type prefetchReader struct {
	fakeReader
	mu       sync.Mutex
	prefetch []core.BlockAddr
	depths   []int
}

func (p *prefetchReader) Prefetch(addr core.BlockAddr, fragments int) {
	p.mu.Lock()
	p.prefetch = append(p.prefetch, addr)
	p.depths = append(p.depths, fragments)
	p.mu.Unlock()
}

// TestReadaheadFiresOnSequentialMisses: misses walking forward in log
// order trigger exactly one Prefetch per fragment entered; random-order
// misses trigger none.
func TestReadaheadFiresOnSequentialMisses(t *testing.T) {
	p := &prefetchReader{fakeReader: *newFake(8, 64)}
	c := New(p, 1<<20)
	c.SetReadahead(4)

	// Sequential walk: addr(0), addr(1), addr(2). The first miss arms the
	// detector; the second and third each enter a new fragment → 2 fires.
	for i := 0; i < 3; i++ {
		if _, err := c.ReadBlock(addr(i), 64, 0, 64); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	fired := len(p.prefetch)
	p.mu.Unlock()
	if fired != 2 {
		t.Fatalf("prefetches = %d, want 2", fired)
	}
	if got := c.ReadaheadTriggers(); got != 2 {
		t.Fatalf("ReadaheadTriggers = %d, want 2", got)
	}
	if p.depths[0] != 4 {
		t.Fatalf("prefetch depth = %d, want 4", p.depths[0])
	}

	// Re-reading a cached fragment (hit) must not re-fire, and a
	// backwards jump breaks the run.
	if _, err := c.ReadBlock(addr(1), 64, 0, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadBlock(addr(6), 64, 0, 64); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	fired = len(p.prefetch)
	p.mu.Unlock()
	if fired != 2 {
		t.Fatalf("non-sequential miss fired prefetch (total %d)", fired)
	}
}

// TestReadaheadDisabledByDefault: without SetReadahead, sequential misses
// never call Prefetch.
func TestReadaheadDisabledByDefault(t *testing.T) {
	p := &prefetchReader{fakeReader: *newFake(4, 64)}
	c := New(p, 1<<20)
	for i := 0; i < 4; i++ {
		if _, err := c.ReadBlock(addr(i), 64, 0, 64); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.prefetch) != 0 {
		t.Fatalf("prefetch fired with readahead disabled (%d)", len(p.prefetch))
	}
}

// TestShardsFor pins the capacity→shards policy: tiny caches get one
// shard (exact global LRU), serving-scale caches get the full fan-out.
func TestShardsFor(t *testing.T) {
	cases := []struct {
		capBytes int64
		want     int
	}{
		{250, 1},
		{256 << 10, 1},
		{512 << 10, 2},
		{1 << 20, 4},
		{4 << 20, 16},
		{64 << 20, 16},
	}
	for _, tc := range cases {
		if got := shardsFor(tc.capBytes); got != tc.want {
			t.Errorf("shardsFor(%d) = %d, want %d", tc.capBytes, got, tc.want)
		}
	}
}

// BenchmarkHotHitParallel measures 64 readers hammering cached blocks —
// the lock-convoy scenario the sharded LRU exists for. Run with
// -benchtime and compare ns/op against a single-shard build to see the
// convoy; the allocation report must stay at 0 allocs/op.
func BenchmarkHotHitParallel(b *testing.B) {
	const blocks = 64
	f := newFake(blocks, 4096)
	c := New(f, 64<<20) // serving-scale: full shard fan-out
	for i := 0; i < blocks; i++ {
		if _, err := c.ReadBlock(addr(i), 4096, 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.SetParallelism(8) // 8 × GOMAXPROCS goroutines ≥ 64 readers
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.ReadBlock(addr(i%blocks), 4096, 0, 4096); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
