package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak enforces goroutine lifecycle discipline in data-path
// packages: every `go` statement must be visibly tied to something that
// bounds or terminates it, or carry swarmlint:goroleak-ok naming what
// does. The population of background workers keeps growing — readahead,
// rebalance movers, straggler drains, connection readers — and a worker
// nobody can stop is a leak per server restart and a shutdown hang
// waiting to happen (the chaos harness restarts servers hundreds of
// times per run).
//
// A goroutine counts as tied when the spawned body contains any of:
//
//   - a Done() call on a sync.WaitGroup — the spawner (or its owner)
//     waits for it;
//   - a close(ch) — the goroutine signals its own completion through a
//     lifecycle channel;
//   - a channel receive (unary <-, range over a channel, or select) —
//     the goroutine parks on channels its owner controls, so closing
//     them unblocks and terminates it;
//   - a send on a channel declared in the spawning function — a
//     result-delivery worker whose lifetime is the request that spawned
//     it.
//
// The body is the function literal itself, or — for `go m.method()` —
// the same-package declaration of the callee. A spawn whose body the
// analyzer cannot see (external callee, method value) needs the
// annotation.
type GoroLeak struct {
	check map[string]bool
}

// NewGoroLeak returns the goroutine-lifecycle analyzer for the given
// package import paths.
func NewGoroLeak(pkgs []string) *GoroLeak {
	check := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		check[p] = true
	}
	return &GoroLeak{check: check}
}

// Name implements Analyzer.
func (*GoroLeak) Name() string { return "goroleak" }

// Doc implements Analyzer.
func (*GoroLeak) Doc() string {
	return "goroutines in data-path packages are tied to a WaitGroup, pool, or lifecycle-owned channel"
}

// Run implements Analyzer.
func (gl *GoroLeak) Run(p *Package) []Diagnostic {
	if !gl.check[p.Path] {
		return nil
	}
	decls := declaredFuncs(p)
	ann := p.Annotations()
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if ann.onLine(g.Pos(), DirectiveGoroleakOK) {
				return true
			}
			spawner := FuncBody(p.EnclosingFunc(g))
			if body, args := spawnedBody(p, decls, g.Call); body != nil {
				if gl.tied(p, body, spawner) || gl.tiedArgs(p, args, spawner) {
					return true
				}
			}
			diags = append(diags, Diagnostic{
				Pos: p.Fset.Position(g.Pos()),
				Message: "goroutine is not visibly tied to a WaitGroup, bounded pool, or lifecycle-owned channel; " +
					"tie its lifetime or annotate with " + DirectiveGoroleakOK + " naming what terminates it",
				Analyzer: gl.Name(),
			})
			return true
		})
	}
	return diags
}

// declaredFuncs maps each function declared in the package to its body,
// so `go m.method()` can be checked through the declaration.
func declaredFuncs(p *Package) map[*types.Func]*ast.BlockStmt {
	m := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd.Body
			}
		}
	}
	return m
}

// spawnedBody resolves the body the go statement runs: a function
// literal's own body, or the same-package declaration of a named
// callee. Returns the spawn call's arguments too — a channel passed as
// an argument ties the goroutine even when the body is opaque.
func spawnedBody(p *Package, decls map[*types.Func]*ast.BlockStmt, call *ast.CallExpr) (*ast.BlockStmt, []ast.Expr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, call.Args
	}
	if fn, ok := calleeObject(p.Info, call).(*types.Func); ok {
		if body := decls[fn]; body != nil {
			return body, call.Args
		}
	}
	return nil, call.Args
}

// tied reports whether body contains any of the lifecycle ties.
func (gl *GoroLeak) tied(p *Package, body *ast.BlockStmt, spawner *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(p.Info, n) || isClose(p.Info, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // channel receive: owner can unblock it
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			found = true
		case *ast.SendStmt:
			// A send ties the goroutine only when the channel belongs to
			// the spawning function (result delivery to a waiting owner);
			// sends on long-lived shared channels prove nothing.
			if spawner != nil {
				if v := rootIdentVar(p.Info, n.Chan); v != nil &&
					v.Pos() >= spawner.Pos() && v.Pos() <= spawner.End() {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// tiedArgs reports whether the spawn call passes a channel declared in
// the spawning function — handing the goroutine a lifecycle channel.
func (gl *GoroLeak) tiedArgs(p *Package, args []ast.Expr, spawner *ast.BlockStmt) bool {
	if spawner == nil {
		return false
	}
	for _, a := range args {
		t := p.Info.TypeOf(a)
		if t == nil {
			continue
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			continue
		}
		if v := rootIdentVar(p.Info, a); v != nil &&
			v.Pos() >= spawner.Pos() && v.Pos() <= spawner.End() {
			return true
		}
	}
	return false
}

// isWaitGroupDone reports whether call is wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	return typeFromPkg(info.TypeOf(sel.X), "sync")
}

// isClose reports whether call is the close builtin.
func isClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
