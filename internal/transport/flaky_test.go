package transport

import (
	"errors"
	"testing"
	"time"

	"swarm/internal/wire"
)

func TestFlakyFailureRateIsSeededAndBounded(t *testing.T) {
	run := func(seed int64) (failures int64) {
		fl := NewFlaky(NewLocal(1, newStore(t), 1))
		fl.SetFailureRate(0.3, seed)
		for i := 0; i < 500; i++ {
			err := fl.Ping()
			if err != nil && !errors.Is(err, ErrUnavailable) {
				t.Fatalf("injected failure has wrong class: %v", err)
			}
		}
		return fl.Failures()
	}
	a := run(42)
	if a == 0 || a == 500 {
		t.Fatalf("failure rate 0.3 produced %d/500 failures", a)
	}
	// Same seed, same call sequence → identical chaos run.
	if b := run(42); b != a {
		t.Fatalf("seeded runs diverged: %d vs %d", a, b)
	}
	// Rough sanity on the rate: expect ~150, allow wide slack.
	if a < 75 || a > 250 {
		t.Fatalf("failure count %d/500 implausible for p=0.3", a)
	}
}

func TestFlakyFailureRateDisable(t *testing.T) {
	fl := NewFlaky(NewLocal(1, newStore(t), 1))
	fl.SetFailureRate(1, 1)
	if err := fl.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("p=1 ping: %v", err)
	}
	fl.SetFailureRate(0, 1)
	if err := fl.Ping(); err != nil {
		t.Fatalf("p=0 ping: %v", err)
	}
}

func TestFlakyInjectedLatency(t *testing.T) {
	fl := NewFlaky(NewLocal(1, newStore(t), 1))
	fl.SetLatency(30 * time.Millisecond)
	start := time.Now()
	if err := fl.Ping(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("ping took %v, want >= 30ms", d)
	}
	// Latency applies even to calls that fail: a hung peer charges the
	// client its timeout before the error surfaces.
	fl.SetDown(true)
	start = time.Now()
	if err := fl.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("down ping: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("down ping took %v, want >= 30ms", d)
	}
	fl.SetLatency(0)
	fl.SetDown(false)
	if err := fl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyCloseReportsDownButReleasesInner(t *testing.T) {
	st := newStore(t)
	fl := NewFlaky(NewLocal(1, st, 1))
	fl.SetDown(true)
	if err := fl.Close(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("close of downed conn: %v", err)
	}
	// The wrapper still counts injected failures distinctly from calls.
	fl2 := NewFlaky(NewLocal(1, st, 1))
	fl2.SetDown(true)
	if err := fl2.Store(wire.MakeFID(1, 0), []byte{1}, false, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("store: %v", err)
	}
	if fl2.Calls() != 1 || fl2.Failures() != 1 {
		t.Fatalf("calls=%d failures=%d, want 1/1", fl2.Calls(), fl2.Failures())
	}
}
