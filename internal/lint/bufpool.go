package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BufPool enforces the wire buffer pool's ownership contract (wire/pool.go,
// DESIGN.md §3.9): every wire.GetBuffer result must, somewhere in its
// owning function, either
//
//   - be released with wire.PutBuffer,
//   - be handed to a documented ownership-transfer call (a function whose
//     doc comment carries swarmlint:owns-buffer),
//   - escape the function (returned, assigned to a field/element/
//     variable, or be a named result), or
//   - carry a // swarmlint:owns-buffer annotation at the call site.
//
// A buffer none of that happens to is a guaranteed pool leak on every
// path — the class of defect PR 3 audited by hand. The analyzer also
// flags the textbook double-put: two consecutive PutBuffer calls on the
// same variable with no intervening statement.
//
// The check is lexical and intraprocedural: it does not prove release on
// every path (a buffer released in one branch and leaked in another
// passes), it proves there is at least one consumption point. That
// asymmetry keeps false positives at zero while still catching the
// leaks that matter: a fetch path that simply forgets the PutBuffer.
type BufPool struct {
	// wirePath is the import path of the package declaring
	// GetBuffer/PutBuffer.
	wirePath string
}

// NewBufPool returns the buffer-ownership analyzer for the pool
// declared in the package at wirePath.
func NewBufPool(wirePath string) *BufPool { return &BufPool{wirePath: wirePath} }

// Name implements Analyzer.
func (*BufPool) Name() string { return "bufpool" }

// Doc implements Analyzer.
func (*BufPool) Doc() string {
	return "wire.GetBuffer results must reach PutBuffer, an ownership-transfer call, or escape"
}

// Run implements Analyzer.
func (b *BufPool) Run(p *Package) []Diagnostic {
	var diags []Diagnostic
	ann := p.Annotations()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFunc(p.Info, call, b.wirePath, "GetBuffer") {
				return true
			}
			if ann.onLine(call.Pos(), DirectiveOwnsBuffer) {
				return true
			}
			if d := b.checkGet(p, call); d != nil {
				diags = append(diags, *d)
			}
			return true
		})
		diags = append(diags, b.checkDoublePuts(p, f)...)
	}
	return diags
}

// checkGet classifies one GetBuffer call site and returns a diagnostic
// if the buffer can never be consumed.
func (b *BufPool) checkGet(p *Package, call *ast.CallExpr) *Diagnostic {
	owner := p.EnclosingFunc(call)
	if owner == nil {
		return nil // package-level initializer: escapes to a global
	}
	parent := effectiveParent(p, call)
	switch parent := parent.(type) {
	case *ast.ReturnStmt:
		return nil // ownership transfers to the caller
	case *ast.AssignStmt, *ast.ValueSpec:
		v := assignedObject(p.Info, parent, call)
		if v == nil {
			// Assigned into a field, element, or blank — a field/element
			// store escapes; `_ = GetBuffer(n)` is a leak.
			if isBlankTarget(parent, call) {
				return b.diag(p, call, "wire.GetBuffer result discarded (assigned to _): guaranteed pool leak")
			}
			return nil
		}
		if isNamedResult(p, owner, v) {
			return nil // assigned to a named result: returns to the caller
		}
		if b.consumed(p, owner, v) {
			return nil
		}
		return b.diag(p, call,
			fmt.Sprintf("wire.GetBuffer result %q never reaches wire.PutBuffer, an ownership-transfer call, or an escape; add one or annotate with %s", v.Name(), DirectiveOwnsBuffer))
	case *ast.CallExpr:
		// Used directly as an argument: fine only when the callee takes
		// ownership.
		if b.isTransferCall(p, parent) {
			return nil
		}
		return b.diag(p, call, "wire.GetBuffer result passed to a call that does not take ownership; bind it to a variable and release it, or annotate the callee with "+DirectiveOwnsBuffer)
	case *ast.ExprStmt:
		return b.diag(p, call, "wire.GetBuffer result discarded: guaranteed pool leak")
	case *ast.KeyValueExpr, *ast.CompositeLit:
		return nil // stored into a composite value: escapes
	}
	// Other syntactic positions (indexing, comparisons, range) keep the
	// value reachable; stay quiet rather than guess.
	return nil
}

// effectiveParent walks up through value-preserving wrappers (parens,
// slicing, indexing) to the node that decides the buffer's fate.
func effectiveParent(p *Package, n ast.Node) ast.Node {
	cur := p.Parent(n)
	for {
		switch cur.(type) {
		case *ast.ParenExpr, *ast.SliceExpr, *ast.IndexExpr:
			cur = p.Parent(cur)
		default:
			return cur
		}
	}
}

// assignedObject returns the variable the call's value lands in when
// stmt assigns it to a plain identifier, else nil.
func assignedObject(info *types.Info, stmt ast.Node, call *ast.CallExpr) *types.Var {
	var lhs []ast.Expr
	var rhs []ast.Expr
	switch stmt := stmt.(type) {
	case *ast.AssignStmt:
		lhs, rhs = stmt.Lhs, stmt.Rhs
	case *ast.ValueSpec:
		for _, name := range stmt.Names {
			lhs = append(lhs, name)
		}
		rhs = stmt.Values
	}
	for i, r := range rhs {
		if ast.Unparen(r) == call && i < len(lhs) {
			if id, ok := lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v
				}
				if v, ok := info.Uses[id].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

// isBlankTarget reports whether the call is assigned to the blank
// identifier.
func isBlankTarget(stmt ast.Node, call *ast.CallExpr) bool {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, r := range assign.Rhs {
		if ast.Unparen(r) == call && i < len(assign.Lhs) {
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				return id.Name == "_"
			}
		}
	}
	return false
}

// isNamedResult reports whether v is one of owner's named result
// parameters (assigning to one is returning to the caller).
func isNamedResult(p *Package, owner ast.Node, v *types.Var) bool {
	var ftype *ast.FuncType
	switch owner := owner.(type) {
	case *ast.FuncDecl:
		ftype = owner.Type
	case *ast.FuncLit:
		ftype = owner.Type
	}
	if ftype == nil || ftype.Results == nil {
		return false
	}
	for _, fld := range ftype.Results.List {
		for _, name := range fld.Names {
			if p.Info.Defs[name] == v {
				return true
			}
		}
	}
	return false
}

// consumed reports whether v is released, transferred, or escapes
// anywhere in owner's body (including nested function literals, which
// may run on any path).
func (b *BufPool) consumed(p *Package, owner ast.Node, v *types.Var) bool {
	body := FuncBody(owner)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !callMentions(p.Info, n, v) {
				return true
			}
			if b.isTransferCall(p, n) {
				found = true
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if mentions(p.Info, r, v) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if !mentions(p.Info, r, v) {
					continue
				}
				// v = v[:n] re-slices in place; anything else whose RHS
				// mentions v stores the buffer somewhere new.
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && (p.Info.Uses[id] == v || p.Info.Defs[id] == v) {
						continue
					}
				}
				found = true
				return false
			}
		case *ast.SendStmt:
			if mentions(p.Info, n.Value, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isTransferCall reports whether call releases or takes ownership of
// buffer arguments: wire.PutBuffer itself, or a same-load callee whose
// doc carries swarmlint:owns-buffer.
func (b *BufPool) isTransferCall(p *Package, call *ast.CallExpr) bool {
	if isFunc(p.Info, call, b.wirePath, "PutBuffer") {
		return true
	}
	return p.Annotations().calleeHas(p.Info, call, DirectiveOwnsBuffer)
}

// callMentions reports whether any argument of call mentions v.
func callMentions(info *types.Info, call *ast.CallExpr, v *types.Var) bool {
	for _, a := range call.Args {
		if mentions(info, a, v) {
			return true
		}
	}
	return false
}

// mentions reports whether expr references v.
func mentions(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == v || info.Defs[id] == v) {
			found = true
		}
		return !found
	})
	return found
}

// checkDoublePuts flags PutBuffer(v) immediately followed by another
// PutBuffer(v) on the same variable — a recycled buffer handed to two
// future GetBuffer callers at once.
func (b *BufPool) checkDoublePuts(p *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		var prev *types.Var
		for _, stmt := range block.List {
			v := putTarget(p.Info, stmt, b.wirePath)
			if v != nil && v == prev {
				diags = append(diags, *b.diag(p, stmt,
					fmt.Sprintf("double wire.PutBuffer of %q: the pool would hand the same buffer to two owners", v.Name())))
			}
			prev = v
		}
		return true
	})
	return diags
}

// putTarget returns the variable released when stmt is a plain
// wire.PutBuffer(v) (possibly re-sliced) statement, else nil.
func putTarget(info *types.Info, stmt ast.Stmt, wirePath string) *types.Var {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || !isFunc(info, call, wirePath, "PutBuffer") || len(call.Args) != 1 {
		return nil
	}
	arg := ast.Unparen(call.Args[0])
	for {
		switch a := arg.(type) {
		case *ast.SliceExpr:
			arg = a.X
		case *ast.Ident:
			if v, ok := info.Uses[a].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func (b *BufPool) diag(p *Package, n ast.Node, msg string) *Diagnostic {
	return &Diagnostic{Pos: p.Fset.Position(n.Pos()), Message: msg, Analyzer: b.Name()}
}
