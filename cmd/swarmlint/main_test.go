package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The swarmlint CLI is itself a CI gate, so its contract — exit codes,
// diagnostic format, -list output — is pinned here. The dirty/clean
// cases run the real binary path (flag parsing, module resolution,
// loading, parallel analysis, relative-path printing) against throwaway
// modules built in t.TempDir.

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"bufpool", "lockio", "guardedby", "errclass", "placement",
		"refcount", "statuscase", "atomicmix", "goroleak",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-only", "nosuch")
	if code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr does not name the unknown analyzer: %q", stderr)
	}
}

func TestUnknownFlagExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

// writeModule lays out a throwaway single-package module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmp\n\ngo 1.24\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package tmp\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, stdout, stderr := runCLI(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("clean module exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module produced output: %q", stdout)
	}
}

// dirtySrc mixes atomic and plain access to one field — an atomicmix
// violation any module triggers, with stdlib-only imports. The plain
// read sits on line 12.
const dirtySrc = `package tmp

import "sync/atomic"

type c struct {
	n int64
}

func (x *c) bump() { atomic.AddInt64(&x.n, 1) }

func (x *c) read() int64 {
	return x.n
}
`

func TestDirtyModuleGoldenOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"dirty.go": dirtySrc})
	code, stdout, stderr := runCLI(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("dirty module exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	// The full diagnostic line is the golden contract: module-relative
	// path, line number, message, analyzer tag.
	want := fmt.Sprintf("dirty.go:12: field %q is accessed with sync/atomic elsewhere but plainly here; "+
		"use the atomic API or annotate with swarmlint:atomic-ok [atomicmix]\n", "n")
	if stdout != want {
		t.Errorf("diagnostic output:\n got: %q\nwant: %q", stdout, want)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr missing findings count: %q", stderr)
	}
}

func TestVerboseTimings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package tmp\n\nfunc Neg(a int) int { return -a }\n",
	})
	code, _, stderr := runCLI(t, "-v", "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	for _, name := range []string{"refcount", "statuscase", "atomicmix", "goroleak", "bufpool"} {
		if !strings.Contains(stderr, name) {
			t.Errorf("-v timing output missing %q:\n%s", name, stderr)
		}
	}
	if !strings.Contains(stderr, "ms") {
		t.Errorf("-v timing output has no duration column:\n%s", stderr)
	}
}
