package swarm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"swarm/internal/transport"
)

// membershipBlock derives a deterministic block body from its index.
func membershipBlock(i int) []byte {
	b := make([]byte, 1024)
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

// TestElasticJoinDrainUnderLoad is the acceptance test for elastic
// membership: a 6-server RS(4,2) cluster takes continuous mixed
// read/write load while a 7th server joins and an original drains to
// removal. Zero data loss, and stripes written before, during, and
// after the epoch changes all read back. Run under -race.
func TestElasticJoinDrainUnderLoad(t *testing.T) {
	cluster, err := NewLocalCluster(6, ServerOptions{DiskBytes: 64 << 20, FragmentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(1, ClientOptions{
		FragmentSize: 16 << 10, Width: 6, ParityShards: 2, Codec: "rs",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l := c.Log()

	// Baseline data before any membership change (epoch 0).
	var (
		mu    sync.Mutex
		addrs []BlockAddr
	)
	appendOne := func(i int) error {
		a, err := l.AppendBlock(7, membershipBlock(i), nil)
		if err != nil {
			return err
		}
		mu.Lock()
		addrs = append(addrs, a)
		mu.Unlock()
		return nil
	}
	for i := 0; i < 48; i++ {
		if err := appendOne(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	// Continuous load: a writer appending new blocks and a reader
	// verifying random already-written ones, both running across the
	// join, the drain, and the removal.
	stop := make(chan struct{})
	errs := make(chan error, 2)
	next := 48
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if err := appendOne(next); err != nil {
				errs <- fmt.Errorf("append %d: %w", next, err)
				return
			}
			next++
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			mu.Lock()
			n := len(addrs)
			idx := (i * 13) % n
			a := addrs[idx]
			mu.Unlock()
			got, err := l.Read(a, 0, 1024)
			if err != nil {
				errs <- fmt.Errorf("read block %d during churn: %w", idx, err)
				return
			}
			if !bytes.Equal(got, membershipBlock(idx)) {
				errs <- fmt.Errorf("block %d corrupted during churn", idx)
				return
			}
		}
	}()

	// The membership sequence, with load running throughout.
	s7, err := NewServer(ServerOptions{DiskBytes: 64 << 20, FragmentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s7.Close()
	joined, err := c.AddLocalServer(s7)
	if err != nil {
		t.Fatal(err)
	}
	if joined != 7 {
		t.Fatalf("new server assigned ID %d, want 7", joined)
	}
	victim := ServerID(1)
	if err := c.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRebalance(victim); err != nil {
		t.Fatal(err)
	}
	st, ok := c.RebalanceStats(victim)
	if !ok || !st.Done {
		t.Fatalf("rebalance not done: %+v", st)
	}
	if st.Moved == 0 {
		t.Fatal("drain moved nothing")
	}
	if err := c.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}

	// A little more load after the removal, then stop.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	// Placement reflects the new world: 6 members, server 1 gone.
	p := c.Placement()
	if len(p.Members) != 6 {
		t.Fatalf("placement has %d members after removal: %+v", len(p.Members), p)
	}
	for _, m := range p.Members {
		if m.ID == victim {
			t.Fatalf("removed server still in placement: %+v", p)
		}
		if m.State != ServerActive {
			t.Fatalf("member %d in state %v after drain completed", m.ID, m.State)
		}
	}
	if p.Epoch < 3 {
		t.Fatalf("epoch %d after join+drain+remove, want >= 3", p.Epoch)
	}

	// Every block ever written — before, during, and after the epoch
	// changes — reads back intact.
	mu.Lock()
	final := append([]BlockAddr(nil), addrs...)
	mu.Unlock()
	if len(final) < 49 {
		t.Fatalf("only %d blocks written; churn load never ran", len(final))
	}
	for i, a := range final {
		got, err := l.Read(a, 0, 1024)
		if err != nil {
			t.Fatalf("final read block %d: %v", i, err)
		}
		if !bytes.Equal(got, membershipBlock(i)) {
			t.Fatalf("block %d corrupted after membership churn", i)
		}
	}
	if ls := l.Stats(); ls.RebalancedFragments == 0 || ls.ServersActive != 6 {
		t.Fatalf("stats after churn: %+v", ls)
	}
}

// TestChaosKillDuringOwnDrain is the S6 chaos test: a server dies
// mid-way through its own drain, under mixed RS(4,2) load. The drain
// must still complete (reconstructing what the corpse held), with zero
// data loss and a successful removal. Run under -race.
func TestChaosKillDuringOwnDrain(t *testing.T) {
	cfg := transport.ResilientConfig{
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		FailThreshold: 3,
		OpenTimeout:   25 * time.Millisecond,
		Seed:          11,
	}
	// 7 servers striped RS(4,2): one spare beyond the stripe width, so
	// draining (then losing) one member is survivable.
	c, flaky := chaosClusterOpts(t, 7, cfg, ClientOptions{Width: 6, ParityShards: 2, Codec: "rs"})
	defer c.Close()
	l := c.Log()

	const nBlocks = 240
	var addrs []BlockAddr
	for i := 0; i < nBlocks; i++ {
		a, err := l.AppendBlock(7, chaosBlock(uint64(i), 0, 1024), nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	victim := ServerID(2)
	if err := c.DrainServer(victim, RebalanceOptions{Workers: 1, Pace: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Kill the victim while its own drain is in flight.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			st, ok := c.RebalanceStats(victim)
			if ok && (st.Moved >= 1 || st.Done) {
				// At least one move completed (or the drain already
				// finished): the server dies mid-drain.
				flaky[victim-1].SetDown(true)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Mixed load while the drain fights the outage.
	loadErr := make(chan error, 1)
	go func() {
		for i := 0; i < 48; i++ {
			if _, err := l.AppendBlock(7, chaosBlock(uint64(1000+i), 0, 1024), nil); err != nil {
				loadErr <- err
				return
			}
			if _, err := l.Read(addrs[i%len(addrs)], 0, 64); err != nil {
				loadErr <- err
				return
			}
		}
		loadErr <- nil
	}()

	if err := c.WaitRebalance(victim); err != nil {
		t.Fatalf("drain did not complete after its server died: %v", err)
	}
	<-killed
	if err := <-loadErr; err != nil {
		t.Fatalf("load during drain+kill: %v", err)
	}
	st, _ := c.RebalanceStats(victim)
	if !st.Done {
		t.Fatalf("rebalance not done: %+v", st)
	}
	if err := c.RemoveServer(victim); err != nil {
		t.Fatalf("remove dead drained server: %v", err)
	}

	// Zero data loss: every block written before and during the chaos
	// reads back, with the victim still dead.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		got, err := l.Read(a, 0, 1024)
		if err != nil {
			t.Fatalf("block %d lost after kill-during-drain: %v", i, err)
		}
		if !bytes.Equal(got, chaosBlock(uint64(i), 0, 1024)) {
			t.Fatalf("block %d corrupted after kill-during-drain", i)
		}
	}
}
