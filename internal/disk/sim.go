package disk

import (
	"sync"
	"time"

	"swarm/internal/model"
)

// SimDisk wraps another Disk and charges time for each access according to
// a mechanical disk model: a seek when the access is not sequential with
// the previous one, an average rotational latency per access, and transfer
// time at the configured sequential rate. It reproduces the performance
// envelope of the paper's Quantum Viking II (10.3 MB/s sequential fragment
// writes), and — crucially for the Modified Andrew Benchmark — the penalty
// an update-in-place file system pays for scattered small writes.
type SimDisk struct {
	backing Disk
	clock   model.Clock

	rate     float64 // bytes/second transfer
	seek     time.Duration
	rotation time.Duration

	mu      sync.Mutex
	headPos int64 // byte offset where the head ended up
	lastEnd time.Time
	busy    time.Duration
	stats   SimStats
}

// SimStats counts disk activity for reporting.
type SimStats struct {
	Reads      int64
	Writes     int64
	BytesRead  int64
	BytesWrite int64
	Seeks      int64
}

var _ Disk = (*SimDisk)(nil)

// NewSimDisk wraps backing with the mechanical timing model in p, using
// clock for delays. If p.DiskRate is zero the disk is infinitely fast.
func NewSimDisk(backing Disk, clock model.Clock, p model.HardwareParams) *SimDisk {
	if clock == nil {
		clock = model.WallClock{}
	}
	return &SimDisk{
		backing:  backing,
		clock:    clock,
		rate:     p.DiskRate,
		seek:     p.DiskSeek,
		rotation: p.DiskRotation,
		headPos:  -(1 << 40), // far away: the first access pays a seek
	}
}

// nearWindow is how far ahead of the head an access may land and still
// be served from the drive's track buffer / read-ahead instead of paying
// a seek: the head skims forward over the gap at the transfer rate.
const nearWindow = 64 << 10

// access computes and records the service time for an n-byte access at off
// and returns the delay to charge the caller.
func (d *SimDisk) access(n int, off int64, write bool) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	var cost time.Duration
	gap := off - d.headPos
	switch {
	case gap == 0:
		// Perfectly sequential: transfer only.
	case gap > 0 && gap <= nearWindow && d.rate > 0:
		// Near-sequential: skim over the gap at transfer speed.
		cost += time.Duration(float64(gap) / d.rate * float64(time.Second))
	default:
		cost += d.seek + d.rotation
		d.stats.Seeks++
	}
	if d.rate > 0 {
		cost += time.Duration(float64(n) / d.rate * float64(time.Second))
	}
	d.headPos = off + int64(n)
	d.busy += cost
	if write {
		d.stats.Writes++
		d.stats.BytesWrite += int64(n)
	} else {
		d.stats.Reads++
		d.stats.BytesRead += int64(n)
	}
	// One arm, one head: concurrent requests queue. Service starts when
	// the previous access finishes (or now, if the disk is idle).
	now := d.clock.Now()
	start := d.lastEnd
	if start.Before(now) {
		start = now
	}
	end := start.Add(cost)
	d.lastEnd = end
	return end.Sub(now)
}

// ReadAt implements Disk, charging simulated time.
func (d *SimDisk) ReadAt(p []byte, off int64) error {
	if err := d.backing.ReadAt(p, off); err != nil {
		return err
	}
	d.clock.Sleep(d.access(len(p), off, false))
	return nil
}

// WriteAt implements Disk, charging simulated time.
func (d *SimDisk) WriteAt(p []byte, off int64) error {
	if err := d.backing.WriteAt(p, off); err != nil {
		return err
	}
	d.clock.Sleep(d.access(len(p), off, true))
	return nil
}

// Sync implements Disk. The timing model charges writes at write time, so
// Sync adds no extra delay beyond the backing store's.
func (d *SimDisk) Sync() error { return d.backing.Sync() }

// Size implements Disk.
func (d *SimDisk) Size() int64 { return d.backing.Size() }

// Close implements Disk.
func (d *SimDisk) Close() error { return d.backing.Close() }

// Busy reports total simulated disk service time.
func (d *SimDisk) Busy() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Stats returns a snapshot of the access counters.
func (d *SimDisk) Stats() SimStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
