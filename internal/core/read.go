package core

import (
	"fmt"
	"hash/crc32"
	"sync"

	"swarm/internal/fragio"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// frameFormat adapts the log's fragment header encoding to the fragment
// I/O engine, which fetches and validates frames without knowing the
// format (fragio sits below core in the dependency order).
type frameFormat struct{}

func (frameFormat) HeaderSize() uint32 { return HeaderSize }

func (frameFormat) Parse(fid wire.FID, hdr []byte) (any, uint32, error) {
	h, err := DecodeHeader(hdr)
	if err != nil {
		return nil, 0, err
	}
	if h.FID != fid {
		return nil, 0, fmt.Errorf("%w: fragment %v claims FID %v", ErrBadFragment, fid, h.FID)
	}
	return h, h.DataLen, nil
}

func (frameFormat) Verify(decoded any, payload []byte) error {
	h := decoded.(Header)
	if crc32.ChecksumIEEE(payload) != h.PayloadCRC {
		// A corrupted replica is as good as a missing one; callers fall
		// back to reconstruction from the stripe.
		return fmt.Errorf("%w: fragment %v payload checksum mismatch", ErrBadFragment, h.FID)
	}
	return nil
}

// fragCache holds recently reconstructed fragments so a stream of reads
// against a failed server doesn't redo the XOR per block.
type fragCache struct {
	mu   sync.Mutex
	cap  int
	m    map[wire.FID]cachedFrag // guarded by mu
	fifo []wire.FID              // guarded by mu
}

type cachedFrag struct {
	header  Header
	payload []byte
}

func newFragCache(capacity int) *fragCache {
	return &fragCache{cap: capacity, m: make(map[wire.FID]cachedFrag, capacity)}
}

func (c *fragCache) get(fid wire.FID) (cachedFrag, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[fid]
	return f, ok
}

func (c *fragCache) put(fid wire.FID, f cachedFrag) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fid]; ok {
		c.m[fid] = f
		return
	}
	for len(c.m) >= c.cap && len(c.fifo) > 0 {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.m, old)
	}
	c.m[fid] = f
	c.fifo = append(c.fifo, fid)
}

func (c *fragCache) drop(fid wire.FID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, fid)
}

// Read returns n bytes starting at off within the block at addr. The fast
// paths serve from the open fragment buffer or in-flight fragments
// (read-your-writes); otherwise the block's server is contacted through
// the fragment I/O engine, and if it is unavailable the fragment is
// reconstructed from its stripe (§2.3.3).
func (l *Log) Read(addr BlockAddr, off, n uint32) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	// Local paths: open fragment or sealed-but-inflight payloads.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	var local []byte
	if l.cur != nil && l.cur.fid == addr.FID {
		local = l.cur.payload[:l.cur.off]
	} else if p, ok := l.inflight[addr.FID]; ok {
		local = p
	}
	if local != nil {
		start := int(addr.Off) + EntryHdrSize + int(off)
		end := start + int(n)
		if end > len(local) {
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: read [%d,%d) beyond fragment data %d", ErrBadFragment, start, end, len(local))
		}
		out := make([]byte, n)
		copy(out, local[start:end])
		l.mu.Unlock()
		return out, nil
	}
	l.mu.Unlock()

	// Reconstructed-fragment cache.
	if f, ok := l.recon.get(addr.FID); ok {
		return sliceBlock(f.payload, addr, off, n)
	}

	// Remote path. With readahead enabled, fetch and cache the whole
	// fragment: sequential cold reads then cost one round trip per
	// fragment instead of one per block.
	if l.readahead {
		h, payload, err := l.FetchFragment(addr.FID)
		if err != nil {
			return nil, err
		}
		l.recon.put(addr.FID, cachedFrag{header: h, payload: payload})
		return sliceBlock(payload, addr, off, n)
	}
	conn := l.lookupConn(addr.FID)
	if conn != nil {
		data, err := l.engine.ReadAt(conn, addr.FID, HeaderSize+addr.Off+EntryHdrSize+off, n)
		if err == nil {
			return data, nil
		}
		if isHardReadError(err) {
			return nil, err
		}
		// Server unavailable or fragment missing: fall through.
	}
	_, payload, err := l.reconstruct(addr.FID)
	if err != nil {
		return nil, err
	}
	return sliceBlock(payload, addr, off, n)
}

// Prefetch implements the block cache's readahead hook
// (blockcache.Prefetcher): it asynchronously warms the
// reconstructed-fragment cache with up to `fragments` data fragments
// following addr's in log order, so the sequential misses about to
// arrive find whole fragments already resident — one disk pass and one
// round trip per fragment instead of one per block. Fetches are
// advisory: each target is deduplicated per FID, failures are swallowed
// (the demand read retries and reports), and only direct reads are
// issued — a reconstruction fan-out is too expensive to spend on
// speculation, and sharing the engine's demand-read singleflight would
// let a failed speculative flight poison a joined demand read.
func (l *Log) Prefetch(addr BlockAddr, fragments int) {
	if fragments <= 0 {
		return
	}
	var targets []wire.FID
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	head := l.seq
	next := addr.FID.Seq()
	for len(targets) < fragments {
		next = l.nextDataSeq(next + 1)
		if next >= head {
			break // nothing sealed past here yet
		}
		fid := wire.MakeFID(l.client, next)
		if _, ok := l.inflight[fid]; ok {
			continue // read-your-writes already serves it locally
		}
		if l.prefetching[fid] {
			continue
		}
		l.prefetching[fid] = true
		targets = append(targets, fid)
	}
	l.mu.Unlock()
	for _, fid := range targets {
		// One-shot speculative fetch: it runs one RPC round and exits,
		// and the prefetching dedup map bounds how many run at once.
		// swarmlint:goroleak-ok — self-terminating one-shot fetch
		go l.prefetchOne(fid)
	}
}

// prefetchOne fetches one fragment speculatively into the fragment
// cache. It must clear the prefetching mark on every path.
func (l *Log) prefetchOne(fid wire.FID) {
	defer func() {
		l.mu.Lock()
		delete(l.prefetching, fid)
		l.mu.Unlock()
	}()
	if _, ok := l.recon.get(fid); ok {
		return
	}
	h, payload, err := l.fetchDirect(fid)
	if err != nil {
		return // advisory: the demand read will retry and report
	}
	l.recon.put(fid, cachedFrag{header: h, payload: payload})
	l.mu.Lock()
	l.stats.PrefetchedFragments++
	l.mu.Unlock()
}

// isHardReadError reports errors that reconstruction cannot help with
// (bad request, access denied).
func isHardReadError(err error) bool {
	return wire.IsStatus(err, wire.StatusBadRequest) || wire.IsStatus(err, wire.StatusAccess)
}

func sliceBlock(payload []byte, addr BlockAddr, off, n uint32) ([]byte, error) {
	start := int(addr.Off) + EntryHdrSize + int(off)
	end := start + int(n)
	if start > len(payload) || end > len(payload) {
		return nil, fmt.Errorf("%w: read [%d,%d) beyond fragment data %d", ErrBadFragment, start, end, len(payload))
	}
	out := make([]byte, n)
	copy(out, payload[start:end])
	return out, nil
}

// FetchFragment returns a fragment's header and payload, reconstructing
// if its server is unavailable. The cleaner, rebuild, and recovery scans
// all fetch through it.
func (l *Log) FetchFragment(fid wire.FID) (Header, []byte, error) {
	// Local copies first.
	l.mu.Lock()
	if l.cur != nil && l.cur.fid == fid {
		fb := l.cur
		h := Header{
			Kind: FragData, Width: uint8(l.width), Index: fb.index,
			FID: fb.fid, StripeID: fb.stripe, DataLen: uint32(fb.off),
		}
		l.stampGeometry(&h)
		l.fillGroup(&h)
		payload := make([]byte, fb.off)
		copy(payload, fb.payload[:fb.off])
		l.mu.Unlock()
		return h, payload, nil
	}
	// Sealed fragments whose store is in flight — or was skipped as a
	// degraded write — are served from the read-your-writes map, so the
	// cleaner and recovery never pay a reconstruction for data this
	// client still holds.
	if p, ok := l.inflight[fid]; ok {
		seq := fid.Seq()
		h := Header{
			Kind: FragData, Width: uint8(l.width), Index: uint8(seq % uint64(l.width)),
			FID: fid, StripeID: l.stripeOf(seq), DataLen: uint32(len(p)),
			PayloadCRC: crc32.ChecksumIEEE(p),
		}
		l.stampGeometry(&h)
		l.fillGroup(&h)
		payload := append([]byte(nil), p...)
		l.mu.Unlock()
		return h, payload, nil
	}
	l.mu.Unlock()

	if f, ok := l.recon.get(fid); ok {
		return f.header, f.payload, nil
	}
	if h, payload, err := l.fetchDirect(fid); err == nil {
		return h, payload, nil
	}
	return l.reconstruct(fid)
}

// StripeMember is one member of a stripe fetched by FetchStripe.
type StripeMember struct {
	FID     wire.FID
	Header  Header
	Payload []byte
	Err     error
}

// FetchStripe fetches every member of a closed stripe concurrently
// through the fragment I/O engine — the cleaner's scan path. A member
// that can be neither read nor reconstructed carries an Err; callers
// decide what absence means (the cleaner skips it, a verifier fails).
func (l *Log) FetchStripe(stripe uint64) []StripeMember {
	base := stripe * uint64(l.width)
	seqs := make([]uint64, l.width)
	for i := range seqs {
		seqs[i] = base + uint64(i)
	}
	frags := l.fetchSeqs(seqs)
	out := make([]StripeMember, l.width)
	for i, seq := range seqs {
		f := frags[seq]
		out[i] = StripeMember{FID: wire.MakeFID(l.client, seq), Header: f.header, Payload: f.payload, Err: f.err}
	}
	return out
}

// fetchedFrag is one result of a fetchSeqs fan-out.
type fetchedFrag struct {
	header  Header
	payload []byte
	err     error
}

// fetchSeqs fetches a set of this log's fragments concurrently, each
// through FetchFragment (local copies, direct read, reconstruction). The
// engine's per-server queues bound the fan-out.
func (l *Log) fetchSeqs(seqs []uint64) map[uint64]fetchedFrag {
	out := make([]fetchedFrag, len(seqs))
	var wg sync.WaitGroup
	for i, seq := range seqs {
		wg.Add(1)
		go func(i int, seq uint64) {
			defer wg.Done()
			h, p, err := l.FetchFragment(wire.MakeFID(l.client, seq))
			out[i] = fetchedFrag{header: h, payload: p, err: err}
		}(i, seq)
	}
	wg.Wait()
	m := make(map[uint64]fetchedFrag, len(seqs))
	for i, seq := range seqs {
		m[seq] = out[i]
	}
	return m
}

// fetchDirect reads a fragment from the server believed to hold it,
// falling back to broadcast discovery — the self-hosting mechanism that
// needs no fragment directory (§2.3.3).
func (l *Log) fetchDirect(fid wire.FID) (Header, []byte, error) {
	conn := l.lookupConn(fid)
	if conn == nil {
		var err error
		conn, err = l.discover(fid)
		if err != nil {
			return Header{}, nil, err
		}
	}
	return l.engineFetch(conn, fid)
}

// engineFetch fetches and validates one whole fragment from conn through
// the engine's bounded per-server queue.
func (l *Log) engineFetch(conn transport.ServerConn, fid wire.FID) (Header, []byte, error) {
	decoded, payload, err := l.engine.Fetch(conn, fid)
	if err != nil {
		return Header{}, nil, err
	}
	return decoded.(Header), payload, nil
}

// discover finds fid by broadcast (deduplicated in the engine: concurrent
// discoveries of the same FID share one broadcast) and records the
// location for future reads.
func (l *Log) discover(fid wire.FID) (transport.ServerConn, error) {
	conn, shared, err := l.engine.Locate(fid)
	if err != nil {
		return nil, fmt.Errorf("%w: fragment %v not found on any server", ErrLost, fid)
	}
	l.mu.Lock()
	l.locations[fid] = conn.ID()
	if !shared {
		l.stats.BroadcastFallback++
	}
	l.mu.Unlock()
	return conn, nil
}

// reconstruct rebuilds fid from its stripe, deduplicated through the
// engine's singleflight: N concurrent readers of the same lost fragment
// pay for exactly one stripe fan-out and share its result. The result is
// cached before the flight lands, so later readers hit the fragment
// cache without a flight at all.
func (l *Log) reconstruct(fid wire.FID) (Header, []byte, error) {
	v, _, err := l.engine.Single(fid, func() (any, error) {
		h, payload, rerr := l.reconstructFragment(fid)
		if rerr != nil {
			return nil, rerr
		}
		f := cachedFrag{header: h, payload: payload}
		l.recon.put(fid, f)
		return f, nil
	})
	if err != nil {
		return Header{}, nil, err
	}
	f := v.(cachedFrag)
	return f.header, f.payload, nil
}

// reconstructFragment rebuilds a missing fragment from surviving
// members of its stripe. Clients reconstruct the fragments they need;
// servers never participate and never learn a reconstruction happened
// (§2.3.3). The stripe is discovered by broadcasting for a neighboring
// fragment — numbering within a stripe is consecutive, so a sibling is
// within MaxWidth-1 sequence numbers — and the stripe group, the
// erasure codec, and the parity count are all read from its header, so
// every stripe decodes with the code that wrote it regardless of this
// client's configuration (mixed-format logs read cleanly). Any k of the
// n = k+m members suffice: the gather returns as soon as k arrive, so
// reconstruction under multiple failures costs ~the k-th fastest member
// fetch, not the slowest of all survivors.
func (l *Log) reconstructFragment(fid wire.FID) (Header, []byte, error) {
	sib, err := l.findSibling(fid)
	if err != nil {
		return Header{}, nil, err
	}
	base := sib.BaseSeq()
	width := int(sib.Width)
	missIdx := int(fid.Seq() - base)
	if missIdx < 0 || missIdx >= width {
		return Header{}, nil, fmt.Errorf("%w: sibling stripe does not contain %v", ErrLost, fid)
	}
	code, err := sib.ErasureCode()
	if err != nil {
		return Header{}, nil, fmt.Errorf("%w: stripe %d: %v", ErrBadFragment, sib.StripeID, err)
	}
	k := code.DataShards()

	// Gather any k of the other width-1 members. Stragglers past the
	// k-th are abandoned; the engine recycles their buffers.
	members := make([]fragio.Member, 0, width-1)
	idxOf := make([]int, 0, width-1)
	for i := 0; i < width; i++ {
		if i == missIdx {
			continue
		}
		members = append(members, fragio.Member{FID: sib.MemberFID(i), Server: sib.Group[i]})
		idxOf = append(idxOf, i)
	}
	results := l.engine.GatherK(members, k)
	// Member payloads only feed the decode below; nothing past this
	// function aliases them, so they go back to the transport's buffer
	// pool on every exit path. (Reconstructed shards are fresh
	// allocations, never pooled.)
	defer func() {
		for _, r := range results {
			wire.PutBuffer(r.Payload)
		}
	}()

	// Place survivors by erasure-shard ordinal (data 0..k-1 in member
	// order skipping parity slots, then parity k..k+m-1).
	shards := make([][]byte, width)
	var lens [MaxWidth]uint32 // data members' DataLens, by member index
	haveLens := false
	got := 0
	for ri, r := range results {
		if r.Err != nil {
			continue
		}
		idx := idxOf[ri]
		h := r.Decoded.(Header)
		_, wantParity := sib.ParityOrdinal(idx)
		if wantParity != (h.Kind == FragParity) {
			// The stripe's real layout contradicts the geometry its
			// headers claim (e.g. a parity-free log): decoding would
			// silently corrupt, so fail loudly.
			return Header{}, nil, fmt.Errorf("%w: stripe %d member %d kind %d does not match its slot", ErrLost, sib.StripeID, idx, h.Kind)
		}
		if h.Kind == FragParity {
			lens = h.MemberLens
			haveLens = true
		} else {
			lens[idx] = h.DataLen
		}
		p := r.Payload
		if p == nil {
			// A zero-length member (stripe padding) is present, not
			// missing: nil is the decoder's missing-shard marker.
			p = []byte{}
		}
		shards[sib.ShardOrdinal(idx)] = p
		got++
	}
	if got < k {
		return Header{}, nil, fmt.Errorf("%w: %d of %d stripe members available, need %d", ErrLost, got, width, k)
	}
	// Remember where the members were actually found (a gather may have
	// located one by broadcast after its group server failed).
	l.mu.Lock()
	for _, r := range results {
		if r.Err == nil && r.From != 0 {
			l.locations[r.FID] = r.From
		}
	}
	l.mu.Unlock()

	if err := code.Reconstruct(shards, l.payloadSize); err != nil {
		return Header{}, nil, fmt.Errorf("%w: stripe %d: %v", ErrLost, sib.StripeID, err)
	}
	full := shards[sib.ShardOrdinal(missIdx)]

	if _, isParity := sib.ParityOrdinal(missIdx); isParity {
		// Rebuilding a parity member. Its header carries every data
		// member's length: from a gathered parity sibling if one
		// arrived, else all k data members arrived and their own
		// headers supplied the lengths above.
		var maxLen uint32
		for _, n := range lens {
			if n > maxLen {
				maxLen = n
			}
		}
		h := Header{
			Kind: FragParity, Width: uint8(width), Index: uint8(missIdx),
			FID: fid, StripeID: sib.StripeID, DataLen: maxLen,
			Group: sib.Group, MemberLens: lens,
			Codec: sib.Codec, NumParity: sib.NumParity, Epoch: sib.Epoch,
			PayloadCRC: crc32.ChecksumIEEE(full[:maxLen]),
		}
		l.bumpReconStat()
		return h, full[:maxLen], nil
	}

	// Rebuilding a data member: its true length comes from a parity
	// sibling's MemberLens. One is always in hand — only k-1 other data
	// members exist, so any k survivors include at least one parity.
	if !haveLens {
		return Header{}, nil, fmt.Errorf("%w: no parity header for stripe %d", ErrLost, sib.StripeID)
	}
	missingLen := lens[missIdx]
	h := Header{
		Kind: FragData, Width: uint8(width), Index: uint8(missIdx),
		FID: fid, StripeID: sib.StripeID, DataLen: missingLen,
		Group: sib.Group,
		Codec: sib.Codec, NumParity: sib.NumParity, Epoch: sib.Epoch,
		PayloadCRC: crc32.ChecksumIEEE(full[:missingLen]),
	}
	l.bumpReconStat()
	return h, full[:missingLen], nil
}

func (l *Log) bumpReconStat() {
	l.mu.Lock()
	l.stats.Reconstructions++
	l.mu.Unlock()
}

// findSibling locates any other fragment of fid's stripe and returns its
// header. Per the paper: "If fragment N needs to be reconstructed, then
// either fragment N-1 or fragment N+1 is in the same stripe. A client
// finds fragment N-1 and N+1 by broadcasting to all storage servers."
func (l *Log) findSibling(fid wire.FID) (*Header, error) {
	seq := fid.Seq()
	for delta := uint64(1); delta < MaxWidth; delta++ {
		for _, cand := range []int64{int64(seq) - int64(delta), int64(seq) + int64(delta)} {
			if cand < 0 {
				continue
			}
			cfid := wire.MakeFID(fid.Client(), uint64(cand))
			h, err := l.fetchSiblingHeader(cfid)
			if err != nil {
				continue
			}
			base := h.BaseSeq()
			if seq >= base && seq < base+uint64(h.Width) {
				return h, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: no stripe sibling found for %v", ErrLost, fid)
}

func (l *Log) fetchSiblingHeader(fid wire.FID) (*Header, error) {
	conn := l.lookupConn(fid)
	if conn == nil {
		found, _, err := l.engine.Locate(fid)
		if err != nil {
			return nil, err
		}
		conn = found
	}
	hdrBytes, err := l.engine.ReadAt(conn, fid, 0, HeaderSize)
	if err != nil {
		// The recorded location may be a down server; try broadcast once
		// (concurrent discoveries of the same FID share one broadcast).
		found, _, berr := l.engine.Locate(fid)
		if berr != nil {
			return nil, err
		}
		hdrBytes, err = l.engine.ReadAt(found, fid, 0, HeaderSize)
		if err != nil {
			return nil, err
		}
	}
	h, err := DecodeHeader(hdrBytes)
	wire.PutBuffer(hdrBytes) // DecodeHeader copies into h
	if err != nil {
		return nil, err
	}
	return &h, nil
}
