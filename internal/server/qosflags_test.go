package server

import (
	"testing"

	"swarm/internal/wire"
)

func TestParseQoSFlags(t *testing.T) {
	cfg, err := ParseQoSFlags("default=2, 7=4", "7=8M:200, 9=:50, default=1.5K")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default.Weight != 2 || cfg.Default.ByteRate != 1500 || cfg.Default.OpRate != 0 {
		t.Fatalf("default class = %+v", cfg.Default)
	}
	c7 := cfg.Classes[wire.ClientID(7)]
	if c7.Weight != 4 || c7.ByteRate != 8e6 || c7.OpRate != 200 {
		t.Fatalf("class 7 = %+v", c7)
	}
	c9 := cfg.Classes[wire.ClientID(9)]
	if c9.Weight != 0 || c9.ByteRate != 0 || c9.OpRate != 50 {
		t.Fatalf("class 9 = %+v", c9)
	}
	if _, err := ParseQoSFlags("", ""); err != nil {
		t.Fatalf("empty flags: %v", err)
	}
}

func TestParseQoSFlagsRejectsGarbage(t *testing.T) {
	bad := [][2]string{
		{"7", ""},           // no '='
		{"7=0", ""},         // zero weight
		{"x=1", ""},         // non-numeric client
		{"", "7=fast"},      // non-numeric rate
		{"", "7=1M:-3"},     // negative op rate
		{"", "default=-1K"}, // negative byte rate
	}
	for _, b := range bad {
		if _, err := ParseQoSFlags(b[0], b[1]); err == nil {
			t.Errorf("ParseQoSFlags(%q, %q) accepted garbage", b[0], b[1])
		}
	}
}
