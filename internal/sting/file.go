package sting

import (
	"fmt"

	"swarm/internal/vfs"
)

// File is an open Sting file handle.
type File struct {
	fs     *FS
	ino    uint64
	closed bool
}

var _ vfs.File = (*File)(nil)

func (f *File) inode() (*inode, error) {
	if f.closed {
		return nil, vfs.ErrClosed
	}
	if f.fs.closed {
		return nil, vfs.ErrClosed
	}
	return f.fs.loadInode(f.ino)
}

// ReadAt implements vfs.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= in.size {
		return 0, nil
	}
	n := len(p)
	if int64(n) > in.size-off {
		n = int(in.size - off)
	}
	bs := int64(fs.blockSize)
	read := 0
	for read < n {
		idx := uint32((off + int64(read)) / bs)
		blockOff := int((off + int64(read)) % bs)
		chunk := fs.blockSize - blockOff
		if chunk > n-read {
			chunk = n - read
		}
		if err := fs.readBlockInto(in, idx, blockOff, p[read:read+chunk]); err != nil {
			return read, err
		}
		read += chunk
	}
	fs.stats.BytesRead += int64(read)
	return read, nil
}

// readBlockInto fills dst from block idx starting at blockOff, treating
// holes and short blocks as zeros. Caller holds fs.mu.
func (fs *FS) readBlockInto(in *inode, idx uint32, blockOff int, dst []byte) error {
	for i := range dst {
		dst[i] = 0
	}
	// Dirty page wins.
	if page, ok := fs.pages[pageKey{ino: in.ino, idx: idx}]; ok {
		copy(dst, page[blockOff:])
		return nil
	}
	if int(idx) >= len(in.blocks) {
		return nil // hole past last block
	}
	b := in.blocks[idx]
	if b.isHole() {
		return nil
	}
	if blockOff >= int(b.len) {
		return nil // reading the zero tail of a short block
	}
	want := len(dst)
	if want > int(b.len)-blockOff {
		want = int(b.len) - blockOff
	}
	var (
		data []byte
		err  error
	)
	if fs.cache != nil {
		data, err = fs.cache.ReadBlock(b.addr, b.len, uint32(blockOff), uint32(want))
	} else {
		data, err = fs.log.Read(b.addr, uint32(blockOff), uint32(want))
	}
	if err != nil {
		return fmt.Errorf("read block %d of inode %d: %w", idx, in.ino, err)
	}
	copy(dst, data)
	return nil
}

// WriteAt implements vfs.File: data lands in the write-back page cache
// and is shipped to the log at the next flush.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	in, err := f.inode()
	if err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	if off < 0 {
		fs.mu.Unlock()
		return 0, vfs.ErrInvalid
	}
	bs := int64(fs.blockSize)
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		idx := uint32(pos / bs)
		blockOff := int(pos % bs)
		chunk := fs.blockSize - blockOff
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		page, err := fs.dirtyPage(in, idx)
		if err != nil {
			fs.mu.Unlock()
			return written, err
		}
		copy(page[blockOff:], p[written:written+chunk])
		written += chunk
	}
	if off+int64(written) > in.size {
		in.size = off + int64(written)
	}
	fs.ensureBlocks(in)
	fs.markDirty(in)
	fs.stats.BytesWritten += int64(written)
	needFlush := fs.dirtyBytes >= fs.dirtyMax
	var flushErr error
	if needFlush {
		flushErr = fs.flushLocked()
	}
	fs.mu.Unlock()
	if flushErr != nil {
		return written, flushErr
	}
	return written, nil
}

// dirtyPage returns the (blockSize-long) dirty page for idx, creating it
// from the stored block contents if necessary. Caller holds fs.mu.
func (fs *FS) dirtyPage(in *inode, idx uint32) ([]byte, error) {
	k := pageKey{ino: in.ino, idx: idx}
	if page, ok := fs.pages[k]; ok {
		return page, nil
	}
	page := make([]byte, fs.blockSize)
	if int(idx) < len(in.blocks) {
		b := in.blocks[idx]
		if !b.isHole() {
			data, err := fs.log.Read(b.addr, 0, b.len)
			if err != nil {
				return nil, fmt.Errorf("fault block %d of inode %d: %w", idx, in.ino, err)
			}
			copy(page, data)
		}
	}
	fs.pages[k] = page
	fs.dirtyBytes += int64(len(page))
	return page, nil
}

// ensureBlocks extends the block table to cover the file size. Caller
// holds fs.mu.
func (fs *FS) ensureBlocks(in *inode) {
	need := int((in.size + int64(fs.blockSize) - 1) / int64(fs.blockSize))
	for len(in.blocks) < need {
		in.blocks = append(in.blocks, blockPtr{})
	}
}

// Size implements vfs.File.
func (f *File) Size() (int64, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return 0, err
	}
	return in.size, nil
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return err
	}
	if size < 0 {
		return vfs.ErrInvalid
	}
	return fs.truncateLocked(in, size)
}

// truncateLocked sets in's size, freeing blocks beyond it and zeroing the
// tail of the new last block so a later extension reads zeros.
func (fs *FS) truncateLocked(in *inode, size int64) error {
	bs := int64(fs.blockSize)
	if size < in.size {
		keep := int((size + bs - 1) / bs)
		for idx := keep; idx < len(in.blocks); idx++ {
			k := pageKey{ino: in.ino, idx: uint32(idx)}
			if p, ok := fs.pages[k]; ok {
				fs.dirtyBytes -= int64(len(p))
				delete(fs.pages, k)
			}
			b := in.blocks[idx]
			if !b.isHole() {
				if err := fs.log.DeleteBlock(b.addr, b.len, fs.svcID); err != nil {
					return err
				}
				if fs.cache != nil {
					fs.cache.Invalidate(b.addr)
				}
			}
		}
		in.blocks = in.blocks[:keep]
		// Zero the tail of the last partial block via a dirty page.
		if tail := size % bs; tail != 0 && keep > 0 {
			page, err := fs.dirtyPage(in, uint32(keep-1))
			if err != nil {
				return err
			}
			for i := tail; i < bs; i++ {
				page[i] = 0
			}
		}
	}
	in.size = size
	fs.ensureBlocks(in)
	fs.markDirty(in)
	return nil
}

// Sync implements vfs.File (flushes the whole file system: Sting is
// single-client, so per-file granularity buys nothing).
func (f *File) Sync() error {
	if f.closed {
		return vfs.ErrClosed
	}
	return f.fs.Sync()
}

// Close implements vfs.File.
func (f *File) Close() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	return nil
}
