package core

import (
	"fmt"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// RebuildServer restores redundancy after a storage server has been
// replaced with an empty one: every fragment of this log that belongs on
// the server (by placement) but is missing gets reconstructed from its
// stripe and stored back. Returns the number of fragments rebuilt.
//
// Rebuilding is client-driven like everything else in Swarm — the
// replacement server is an ordinary empty fragment repository and never
// learns it is being rebuilt. Each client rebuilds its own fragments;
// run this once per client after swapping hardware.
func (l *Log) RebuildServer(id wire.ServerID) (int, error) {
	conn := l.place.Conn(id)
	if conn == nil {
		return 0, fmt.Errorf("%w: server %d not in configuration", ErrConfig, id)
	}
	// Clear out deletions deferred while servers were unreachable: their
	// stripes are already reclaimed, so any orphan still listed would be
	// mistaken for a live stripe member below.
	l.FlushDeletes()
	l.mu.Lock()
	stale := make(map[wire.FID]bool, len(l.pendingDel))
	for fid := range l.pendingDel {
		stale[fid] = true
	}
	l.mu.Unlock()
	// What the server already has.
	present := make(map[wire.FID]bool)
	fids, err := conn.List(l.client)
	if err != nil {
		return 0, fmt.Errorf("list server %d: %w", id, err)
	}
	for _, fid := range fids {
		if !stale[fid] {
			present[fid] = true
		}
	}
	// What exists anywhere (the stripe population), including fragments
	// this client failed to store while the server was unreachable
	// (degraded writes): those exist logically and are reconstructable
	// from their stripe's parity.
	known := make(map[uint64]bool)
	for _, sc := range l.place.Conns() {
		all, err := sc.List(l.client)
		if err != nil {
			continue
		}
		for _, fid := range all {
			if !stale[fid] {
				known[fid.Seq()] = true
			}
		}
	}
	l.mu.Lock()
	for _, set := range l.degraded {
		for fid := range set {
			known[fid.Seq()] = true
		}
	}
	l.mu.Unlock()

	rebuilt := 0
	for stripe := range l.stripesOf(known) {
		for idx := 0; idx < l.width; idx++ {
			// A fragment belongs here if its stripe's placement assigns
			// the slot to this server — under the stripe's own epoch for
			// stripes written this session, the head view otherwise.
			if l.connAt(stripe, idx).ID() != id {
				continue
			}
			fid := wire.MakeFID(l.client, stripe*uint64(l.width)+uint64(idx))
			if present[fid] {
				continue
			}
			// Does the stripe have any surviving member to rebuild from?
			if !l.stripeKnown(known, stripe, fid.Seq()) {
				continue
			}
			// FetchFragment serves degraded writes from the local
			// read-your-writes copy and reconstructs everything else from
			// the stripe's surviving members.
			h, payload, err := l.FetchFragment(fid)
			if err != nil {
				return rebuilt, fmt.Errorf("reconstruct %v: %w", fid, err)
			}
			frame := make([]byte, HeaderSize+len(payload))
			copy(frame, EncodeHeader(&h))
			copy(frame[HeaderSize:], payload)
			// The engine's store policy treats StatusExists as success —
			// here that means the store raced with another writer and the
			// fragment is on the server either way.
			if err := l.engine.Store(conn, fid, frame, false, l.rangesFor(conn, len(frame))); err != nil {
				return rebuilt, fmt.Errorf("store rebuilt %v: %w", fid, err)
			}
			l.mu.Lock()
			l.locations[fid] = id
			l.clearDegradedLocked(fid)
			delete(l.inflight, fid)
			l.mu.Unlock()
			rebuilt++
		}
	}
	return rebuilt, nil
}

// rangesFor returns the ACL ranges to apply when storing a whole frame to
// conn, mirroring the write path's protection.
func (l *Log) rangesFor(conn transport.ServerConn, frameLen int) []wire.ACLRange {
	l.mu.Lock()
	aid, ok := l.acls[conn.ID()]
	l.mu.Unlock()
	if ok {
		return []wire.ACLRange{{Off: 0, Len: uint32(frameLen), AID: aid}}
	}
	return nil
}

// stripesOf collects the stripe IDs covered by a set of known sequence
// numbers.
func (l *Log) stripesOf(known map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for seq := range known {
		out[l.stripeOf(seq)] = true
	}
	return out
}

// stripeKnown reports whether the stripe has a surviving member other
// than the missing sequence number.
func (l *Log) stripeKnown(known map[uint64]bool, stripe uint64, missing uint64) bool {
	base := stripe * uint64(l.width)
	for i := uint64(0); i < uint64(l.width); i++ {
		if base+i != missing && known[base+i] {
			return true
		}
	}
	return false
}
