package extfs

import (
	"fmt"

	"swarm/internal/vfs"
)

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, vfs.ErrClosed
	}
	dirIno, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if ent, ok, err := fs.dirLookup(dir, name); err != nil {
		return nil, err
	} else if ok {
		in, err := fs.readInode(ent.ino)
		if err != nil {
			return nil, err
		}
		if in.isDir() {
			return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, path)
		}
		if err := fs.truncate(ent.ino, in, 0); err != nil {
			return nil, err
		}
		return &File{fs: fs, ino: ent.ino}, nil
	}
	ino, _, err := fs.allocInode(modeFile)
	if err != nil {
		return nil, err
	}
	if err := fs.dirInsert(dirIno, dir, dirEntry{ino: ino, mode: modeFile, name: name}); err != nil {
		return nil, err
	}
	if err := fs.metaSync(); err != nil {
		return nil, err
	}
	return &File{fs: fs, ino: ino}, nil
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, vfs.ErrClosed
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	ino, in, err := fs.resolve(parts)
	if err != nil {
		return nil, err
	}
	if in.isDir() {
		return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, path)
	}
	return &File{fs: fs, ino: ino}, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	dirIno, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	if _, ok, err := fs.dirLookup(dir, name); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", vfs.ErrExist, path)
	}
	ino, in, err := fs.allocInode(modeDir)
	if err != nil {
		return err
	}
	in.nlink = 2
	if err := fs.writeInode(ino, in); err != nil {
		return err
	}
	if err := fs.dirInsert(dirIno, dir, dirEntry{ino: ino, mode: modeDir, name: name}); err != nil {
		return err
	}
	dir.nlink++
	if err := fs.writeInode(dirIno, dir); err != nil {
		return err
	}
	return fs.metaSync()
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	dirIno, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ent, ok, err := fs.dirLookup(dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, path)
	}
	child, err := fs.readInode(ent.ino)
	if err != nil {
		return err
	}
	if !child.isDir() {
		return fmt.Errorf("%w: %s", vfs.ErrNotDir, path)
	}
	entries, err := fs.readDirEntries(child)
	if err != nil {
		return err
	}
	if len(entries) != 0 {
		return fmt.Errorf("%w: %s", vfs.ErrNotEmpty, path)
	}
	if err := fs.dirRemove(dirIno, dir, name); err != nil {
		return err
	}
	dir.nlink--
	if err := fs.writeInode(dirIno, dir); err != nil {
		return err
	}
	if err := fs.freeInode(ent.ino, child); err != nil {
		return err
	}
	return fs.metaSync()
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	dirIno, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ent, ok, err := fs.dirLookup(dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, path)
	}
	child, err := fs.readInode(ent.ino)
	if err != nil {
		return err
	}
	if child.isDir() {
		return fmt.Errorf("%w: %s", vfs.ErrIsDir, path)
	}
	if err := fs.dirRemove(dirIno, dir, name); err != nil {
		return err
	}
	if err := fs.freeInode(ent.ino, child); err != nil {
		return err
	}
	return fs.metaSync()
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	oldDirIno, oldDir, oldName, err := fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	ent, ok, err := fs.dirLookup(oldDir, oldName)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, oldPath)
	}
	newDirIno, newDir, newName, err := fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	if existing, ok, err := fs.dirLookup(newDir, newName); err != nil {
		return err
	} else if ok {
		target, err := fs.readInode(existing.ino)
		if err != nil {
			return err
		}
		if target.isDir() || ent.mode == modeDir {
			return fmt.Errorf("%w: %s", vfs.ErrExist, newPath)
		}
		if err := fs.dirRemove(newDirIno, newDir, newName); err != nil {
			return err
		}
		if err := fs.freeInode(existing.ino, target); err != nil {
			return err
		}
		// Re-read directory inodes invalidated by the removal.
		if newDir, err = fs.readInode(newDirIno); err != nil {
			return err
		}
		if oldDirIno == newDirIno {
			oldDir = newDir
		}
	}
	if err := fs.dirRemove(oldDirIno, oldDir, oldName); err != nil {
		return err
	}
	if newDirIno == oldDirIno {
		newDir = oldDir
	} else if newDir == oldDir {
		// Distinct inodes but shared struct is impossible; reload to be
		// safe if aliased.
		var rerr error
		if newDir, rerr = fs.readInode(newDirIno); rerr != nil {
			return rerr
		}
	}
	if err := fs.dirInsert(newDirIno, newDir, dirEntry{ino: ent.ino, mode: ent.mode, name: newName}); err != nil {
		return err
	}
	if ent.mode == modeDir && oldDirIno != newDirIno {
		oldDir.nlink--
		if err := fs.writeInode(oldDirIno, oldDir); err != nil {
			return err
		}
		newDir.nlink++
		if err := fs.writeInode(newDirIno, newDir); err != nil {
			return err
		}
	}
	return fs.metaSync()
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.FileInfo{}, vfs.ErrClosed
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	ino, in, err := fs.resolve(parts)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return vfs.FileInfo{
		Name:  name,
		Ino:   uint64(ino),
		Size:  in.size,
		Mode:  in.vfsMode(),
		Nlink: uint32(in.nlink),
		MTime: in.mtime,
	}, nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, vfs.ErrClosed
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	_, in, err := fs.resolve(parts)
	if err != nil {
		return nil, err
	}
	if !in.isDir() {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, path)
	}
	entries, err := fs.readDirEntries(in)
	if err != nil {
		return nil, err
	}
	entries = sortedEntries(entries)
	out := make([]vfs.DirEntry, 0, len(entries))
	for _, e := range entries {
		mode := vfs.ModeFile
		if e.mode == modeDir {
			mode = vfs.ModeDir
		}
		out = append(out, vfs.DirEntry{Name: e.name, Ino: uint64(e.ino), Mode: mode})
	}
	return out, nil
}

// File is an open extfs file handle.
type File struct {
	fs     *FS
	ino    uint32
	closed bool
}

var _ vfs.File = (*File)(nil)

func (f *File) inode() (*dinode, error) {
	if f.closed || f.fs.closed {
		return nil, vfs.ErrClosed
	}
	in, err := f.fs.readInode(f.ino)
	if err != nil {
		return nil, err
	}
	if in.mode == modeFree {
		return nil, vfs.ErrNotExist
	}
	return in, nil
}

// ReadAt implements vfs.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return 0, err
	}
	return f.fs.readAt(in, p, off)
}

// WriteAt implements vfs.File.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return 0, err
	}
	return f.fs.writeAt(f.ino, in, p, off)
}

// Size implements vfs.File.
func (f *File) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return 0, err
	}
	return in.size, nil
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	in, err := f.inode()
	if err != nil {
		return err
	}
	return f.fs.truncate(f.ino, in, size)
}

// Sync implements vfs.File.
func (f *File) Sync() error {
	if f.closed {
		return vfs.ErrClosed
	}
	return f.fs.Sync()
}

// Close implements vfs.File.
func (f *File) Close() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	return nil
}
