package extfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"swarm/internal/disk"
	"swarm/internal/vfs"
	"swarm/internal/vfs/vfstest"
)

const testBlockSize = 1024

func newFS(t *testing.T, size int64) (*FS, *disk.MemDisk) {
	t.Helper()
	d := disk.NewMemDisk(size)
	fs, err := Mkfs(d, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	return fs, d
}

func TestConformance(t *testing.T) {
	vfstest.Conformance(t, func(t *testing.T) vfs.FileSystem {
		fs, _ := newFS(t, 32<<20)
		return fs
	})
}

func TestMkfsValidation(t *testing.T) {
	if _, err := Mkfs(disk.NewMemDisk(1<<20), 1000); err == nil {
		t.Fatal("non-power-of-two block size accepted")
	}
	if _, err := Mkfs(disk.NewMemDisk(2048), 1024); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("tiny disk: %v", err)
	}
}

func TestMountRejectsUnformatted(t *testing.T) {
	if _, err := Mount(disk.NewMemDisk(1 << 20)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mount unformatted: %v", err)
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	fs, d := newFS(t, 16<<20)
	if err := vfs.MkdirAll(fs, "/a/b"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("ext"), 5000)
	if err := vfs.WriteFile(fs, "/a/b/f", content); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(d)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Unmount()
	got, err := vfs.ReadFile(fs2, "/a/b/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("contents lost across remount")
	}
}

func TestSyncThenCrashPreservesData(t *testing.T) {
	fs, d := newFS(t, 16<<20)
	if err := vfs.WriteFile(fs, "/f", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: mount the same disk without unmounting.
	fs2, err := Mount(d)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Unmount()
	got, err := vfs.ReadFile(fs2, "/f")
	if err != nil || string(got) != "synced" {
		t.Fatalf("after crash = (%q,%v)", got, err)
	}
}

func TestLargeFileUsesIndirectBlocks(t *testing.T) {
	fs, d := newFS(t, 64<<20)
	// > NDirect + ptrsPerBlock blocks: forces double-indirect.
	pp := int(fs.ptrsPerBlock())
	nBlocks := NDirect + pp + 10
	size := nBlocks * testBlockSize
	data := make([]byte, size)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)

	if err := vfs.WriteFile(fs, "/huge", data); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/huge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("double-indirect file corrupted")
	}
	// Verify the inode actually uses both indirection levels.
	fs.mu.Lock()
	_, in, err := fs.resolve([]string{"huge"})
	fs.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if in.indirect == 0 || in.dindirect == 0 {
		t.Fatalf("indirect=%d dindirect=%d", in.indirect, in.dindirect)
	}
	// And persists across remount.
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(d)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Unmount()
	got, err = vfs.ReadFile(fs2, "/huge")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("double-indirect file lost: %v", err)
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	fs, _ := newFS(t, 16<<20)
	freeBefore, err := fs.dbm.countFree()
	if err != nil {
		t.Fatal(err)
	}
	pp := int(fs.ptrsPerBlock())
	size := (NDirect + pp + 5) * testBlockSize
	if err := vfs.WriteFile(fs, "/f", make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	freeDuring, err := fs.dbm.countFree()
	if err != nil {
		t.Fatal(err)
	}
	if freeDuring >= freeBefore {
		t.Fatal("no blocks consumed")
	}
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	freeAfter, err := fs.dbm.countFree()
	if err != nil {
		t.Fatal(err)
	}
	if freeAfter != freeBefore {
		t.Fatalf("block leak: %d before, %d after (lost %d)", freeBefore, freeAfter, freeBefore-freeAfter)
	}
	// Inode freed too.
	inoFree, err := fs.ibm.countFree()
	if err != nil {
		t.Fatal(err)
	}
	inoFreeBefore := fs.g.nInodes - 2 // sentinel + root
	if inoFree != inoFreeBefore {
		t.Fatalf("inode leak: %d free, want %d", inoFree, inoFreeBefore)
	}
}

func TestFillDiskReturnsNoSpace(t *testing.T) {
	fs, _ := newFS(t, 1<<20) // tiny
	var err error
	for i := 0; i < 10000; i++ {
		err = vfs.WriteFile(fs, fmt.Sprintf("/f%d", i), make([]byte, 8*testBlockSize))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("filling disk: %v", err)
	}
	// Deleting makes room again.
	if err := fs.Unlink("/f0"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/again", make([]byte, 4*testBlockSize)); err != nil {
		t.Fatalf("write after delete: %v", err)
	}
}

func TestGeometrySanity(t *testing.T) {
	g, err := computeGeometry(16<<20, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if g.totalBlocks != 16384 {
		t.Fatalf("totalBlocks = %d", g.totalBlocks)
	}
	if g.dataStart <= g.tableStart || g.tableStart <= g.dbmStart || g.dbmStart <= g.ibmStart {
		t.Fatalf("layout out of order: %+v", g)
	}
	// Superblock roundtrip.
	g2, err := decodeSuper(g.encodeSuper(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatalf("superblock roundtrip: %+v vs %+v", g2, g)
	}
	// Corruption detection.
	buf := g.encodeSuper()
	buf[4] ^= 0xFF
	if _, err := decodeSuper(buf, 16<<20); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt superblock: %v", err)
	}
}

func TestInodeEncodeDecode(t *testing.T) {
	in := newInode(modeFile)
	in.size = 99999
	in.nlink = 3
	in.direct[0] = 100
	in.direct[11] = 200
	in.indirect = 300
	in.dindirect = 400
	buf := make([]byte, inodeSize)
	in.encode(buf)
	got := decodeDInode(buf)
	if got.mode != in.mode || got.size != in.size || got.nlink != in.nlink {
		t.Fatalf("roundtrip = %+v", got)
	}
	if got.direct != in.direct || got.indirect != 300 || got.dindirect != 400 {
		t.Fatalf("pointers = %+v", got)
	}
}

// Property: bitmap alloc/free maintain the free count and never hand out
// a unit twice.
func TestQuickBitmapInvariants(t *testing.T) {
	d := disk.NewMemDisk(1 << 20)
	cache := newBufferCache(d, 1024, 1<<20)
	bm := newBitmap(cache, 0, 512)
	allocated := make(map[uint32]bool)
	f := func(doFree bool, which uint16) bool {
		if doFree && len(allocated) > 0 {
			// Free an arbitrary allocated unit.
			var victim uint32
			for u := range allocated {
				victim = u
				break
			}
			if err := bm.free(victim); err != nil {
				return false
			}
			delete(allocated, victim)
			return true
		}
		u, err := bm.alloc(uint32(which) % 512)
		if err != nil {
			return len(allocated) == 512 // only fails when full
		}
		if allocated[u] {
			return false // double allocation!
		}
		allocated[u] = true
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	free, err := bm.countFree()
	if err != nil {
		t.Fatal(err)
	}
	if free != 512-uint32(len(allocated)) {
		t.Fatalf("free count %d, want %d", free, 512-len(allocated))
	}
}

func TestBitmapDoubleFreeDetected(t *testing.T) {
	d := disk.NewMemDisk(1 << 20)
	cache := newBufferCache(d, 1024, 1<<20)
	bm := newBitmap(cache, 0, 64)
	u, err := bm.alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.free(u); err != nil {
		t.Fatal(err)
	}
	if err := bm.free(u); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double free: %v", err)
	}
}

func TestBufferCacheWriteback(t *testing.T) {
	// Verify flush leaves no dirty blocks and data reaches the disk.
	d := disk.NewMemDisk(1 << 20)
	cache := newBufferCache(d, 1024, 1<<20)
	for i := uint32(0); i < 10; i++ {
		p, err := cache.getDirty(i)
		if err != nil {
			t.Fatal(err)
		}
		p[0] = byte(i + 1)
	}
	if err := cache.flush(); err != nil {
		t.Fatal(err)
	}
	if len(cache.dirty) != 0 {
		t.Fatalf("%d dirty blocks after flush", len(cache.dirty))
	}
	buf := make([]byte, 1)
	for i := uint32(0); i < 10; i++ {
		if err := d.ReadAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("block %d not written back", i)
		}
	}
}

func TestSyncMetadataModeStillConforms(t *testing.T) {
	// The classic-consistency mode (metadata write-through + block-group
	// allocation) must not change semantics, only timing.
	vfstest.Conformance(t, func(t *testing.T) vfs.FileSystem {
		fs, _ := newFS(t, 32<<20)
		fs.SetSyncMetadata(true)
		return fs
	})
}

func TestSyncMetadataFlushesOnNamespaceOps(t *testing.T) {
	fs, d := newFS(t, 16<<20)
	fs.SetSyncMetadata(true)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d/f", []byte("sync-meta")); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().MetaSyncs == 0 {
		t.Fatal("no metadata syncs recorded")
	}
	// Crash WITHOUT unmount or Sync: namespace survives because every
	// namespace op wrote through. (File data may not; create+write in
	// WriteFile ends with Close, not Sync — but the create itself
	// flushed, so the file exists.)
	fs2, err := Mount(d)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Unmount()
	if _, err := fs2.Stat("/d/f"); err != nil {
		t.Fatalf("namespace lost after crash in sync-metadata mode: %v", err)
	}
}

func TestBlockGroupSpreadAllocation(t *testing.T) {
	fs, _ := newFS(t, 32<<20)
	fs.SetSyncMetadata(true)
	// Two files in different inodes should be placed in different block
	// groups (far apart on disk).
	if err := vfs.WriteFile(fs, "/a", make([]byte, 4*testBlockSize)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/pad%d", i), make([]byte, testBlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := vfs.WriteFile(fs, "/b", make([]byte, 4*testBlockSize)); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	_, ia, err := fs.resolve([]string{"a"})
	if err != nil {
		fs.mu.Unlock()
		t.Fatal(err)
	}
	_, ib, err := fs.resolve([]string{"b"})
	if err != nil {
		fs.mu.Unlock()
		t.Fatal(err)
	}
	fs.mu.Unlock()
	da := int64(ia.direct[0])
	db := int64(ib.direct[0])
	span := int64(fs.g.totalBlocks-fs.g.dataStart) / blockGroups
	gap := da - db
	if gap < 0 {
		gap = -gap
	}
	if gap < span/2 {
		t.Fatalf("blocks %d and %d are %d apart; expected block-group spread ≥ %d", da, db, gap, span/2)
	}
}

func TestRenameEdgeCases(t *testing.T) {
	fs, _ := newFS(t, 16<<20)
	if fs.BlockSize() != testBlockSize {
		t.Fatalf("BlockSize = %d", fs.BlockSize())
	}
	// Rename within the same directory.
	if err := vfs.WriteFile(fs, "/a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/b")
	if err != nil || string(got) != "one" {
		t.Fatalf("same-dir rename = (%q,%v)", got, err)
	}
	// Rename replacing a file in the same directory.
	if err := vfs.WriteFile(fs, "/c", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/c", "/b"); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs, "/b")
	if string(got) != "two" {
		t.Fatalf("replace rename = %q", got)
	}
	// Cross-directory directory rename adjusts parent link counts.
	if err := vfs.MkdirAll(fs, "/src/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/dst"); err != nil {
		t.Fatal(err)
	}
	srcBefore, _ := fs.Stat("/src")
	dstBefore, _ := fs.Stat("/dst")
	if err := fs.Rename("/src/sub", "/dst/sub"); err != nil {
		t.Fatal(err)
	}
	srcAfter, _ := fs.Stat("/src")
	dstAfter, _ := fs.Stat("/dst")
	if srcAfter.Nlink != srcBefore.Nlink-1 {
		t.Fatalf("src nlink %d -> %d", srcBefore.Nlink, srcAfter.Nlink)
	}
	if dstAfter.Nlink != dstBefore.Nlink+1 {
		t.Fatalf("dst nlink %d -> %d", dstBefore.Nlink, dstAfter.Nlink)
	}
	// Renaming a file over a directory fails.
	if err := vfs.WriteFile(fs, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/f", "/dst"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("file over dir = %v", err)
	}
	// Renaming a directory over a file fails.
	if err := fs.Rename("/dst", "/f"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("dir over file = %v", err)
	}
}
