package server

import (
	"sort"
	"sync"
	"time"

	"swarm/internal/model"
	"swarm/internal/wire"
)

// This file is the multi-tenant QoS tier (DESIGN.md §3.14): a
// per-principal weighted-fair scheduler (deficit round robin over
// byte-weighted request costs) with token-bucket quotas and admission
// control in front of the store's data-plane operations.
//
// The shape is a blocking gate, not a thread pool: the transport's own
// goroutine (a connWorker on the TCP path, the caller on the in-process
// path) enqueues itself, waits until the scheduler dispatches it, runs
// the handler, and on completion dispatches the next waiter. Dispatch
// happens inline under the scheduler mutex — there is no scheduler
// goroutine to wedge or leak — and the bounded "slots" count is what
// limits handler concurrency, playing the role the FIFO worker-pool
// semaphore played before.
//
// Overload is shed, never absorbed: admission bounds each class's queued
// bytes and ops, quotas are charged non-blockingly at admission
// (model.Throttle.TryAcquire), and a rejected request returns
// wire.StatusBusy, which transport.Resilient retries with backoff
// without tripping its circuit breaker. Shedding keeps the server's
// memory and goroutine budget proportional to what it will actually
// serve; blocking would let one tenant hold every connection worker
// hostage, which is the exact failure this tier removes.

// Default knobs. Slots matches the TCP front end's per-connection worker
// count so enabling QoS with one connection does not reduce attainable
// concurrency; the quantum is one typical fragment write so one DRR
// round at weight 1 admits about one data-plane request.
const (
	defaultQoSSlots       = 16
	defaultQoSQuantum     = 64 << 10
	defaultQoSMaxQueuedB  = 32 << 20
	defaultQoSMaxQueuedOp = 1024

	// qosMinCost floors a request's byte-weighted cost so metadata
	// operations are not free: a tenant spinning on LastMarked still
	// consumes its fair share.
	qosMinCost = 4096
)

// ClassConfig describes one tenant class: its fair-share weight and
// optional quotas and admission bounds. The zero value means "default
// everything": weight 1, no quotas, default queue bounds.
type ClassConfig struct {
	// Weight is the class's DRR weight; classes drain queued bytes in
	// proportion to their weights. Zero means 1.
	Weight int

	// ByteRate/ByteBurst, if ByteRate > 0, cap the class's admitted
	// byte-weighted cost per second with a token bucket. OpRate/OpBurst
	// likewise cap admitted operations per second. Requests over quota
	// are shed with StatusBusy, not queued: quota is a rate statement,
	// and queueing over-quota work would just convert it into latency.
	ByteRate  float64
	ByteBurst float64
	OpRate    float64
	OpBurst   float64

	// MaxQueuedBytes / MaxQueuedOps bound the class's queue; zero means
	// the defaults (32 MB, 1024 ops). Admission control sheds beyond
	// them so a tenant's backlog cannot grow without bound.
	MaxQueuedBytes int64
	MaxQueuedOps   int
}

// QoSConfig configures the server's weighted-fair scheduler.
type QoSConfig struct {
	// Slots bounds concurrently executing handlers (default 16).
	Slots int
	// Quantum is the DRR byte quantum added per weight unit per round
	// (default 64 KB).
	Quantum int
	// Default is the class applied to principals not listed in Classes
	// (including the anonymous principal, client 0).
	Default ClassConfig
	// Classes assigns per-principal classes.
	Classes map[wire.ClientID]ClassConfig
	// Clock supplies time for quotas and latency accounting (wall clock
	// when nil; a model.FakeClock makes quota tests deterministic).
	Clock model.Clock
}

// qosWaiter is one enqueued request: its byte-weighted cost, enqueue
// time (service latency is measured enqueue → completion), and the
// channel the dispatcher closes to release it.
type qosWaiter struct {
	cost  int64
	enq   time.Time
	ready chan struct{}
}

// qosClass is one principal's scheduler state.
type qosClass struct {
	client wire.ClientID
	weight int64

	// Quota buckets (nil = unlimited); Throttle is internally locked.
	bytes *model.Throttle
	ops   *model.Throttle

	maxQueuedBytes int64
	maxQueuedOps   int

	queue       []*qosWaiter // waiting requests, FIFO; guarded by mu (the scheduler's)
	queuedBytes int64        // sum of queued costs; guarded by mu (the scheduler's)
	inflight    int          // dispatched, not yet completed; guarded by mu (the scheduler's)
	active      bool         // class is in the DRR ring; guarded by mu (the scheduler's)
	charged     bool         // quantum granted for the current ring visit; guarded by mu (the scheduler's)
	deficit     int64        // DRR deficit in bytes; guarded by mu (the scheduler's)

	servedOps   uint64      // requests completed; guarded by mu (the scheduler's)
	servedBytes uint64      // byte-weighted cost completed; guarded by mu (the scheduler's)
	sheds       uint64      // requests rejected at admission; guarded by mu (the scheduler's)
	hist        latencyHist // service-latency histogram; guarded by mu (the scheduler's)
}

// qosSched is the weighted-fair scheduler: a DRR ring of active classes
// plus a bounded count of in-flight handlers.
type qosSched struct {
	clock    model.Clock
	slots    int
	quantum  int64
	defaults ClassConfig
	configs  map[wire.ClientID]ClassConfig

	mu       sync.Mutex
	inflight int                         // handlers currently dispatched; guarded by mu
	classes  map[wire.ClientID]*qosClass // all classes ever seen; guarded by mu
	ring     []*qosClass                 // classes with queued work; guarded by mu
	cursor   int                         // current DRR ring position; guarded by mu
}

// newQoSSched builds a scheduler from a config, applying defaults.
func newQoSSched(cfg QoSConfig) *qosSched {
	q := &qosSched{
		clock:    cfg.Clock,
		slots:    cfg.Slots,
		quantum:  int64(cfg.Quantum),
		defaults: cfg.Default,
		configs:  cfg.Classes,
		classes:  make(map[wire.ClientID]*qosClass),
	}
	if q.clock == nil {
		q.clock = model.WallClock{}
	}
	if q.slots <= 0 {
		q.slots = defaultQoSSlots
	}
	if q.quantum <= 0 {
		q.quantum = defaultQoSQuantum
	}
	return q
}

// classLocked returns (creating on first sight) the class for a client.
func (q *qosSched) classLocked(client wire.ClientID) *qosClass {
	c := q.classes[client]
	if c != nil {
		return c
	}
	cfg, ok := q.configs[client]
	if !ok {
		cfg = q.defaults
	}
	c = &qosClass{
		client:         client,
		weight:         int64(cfg.Weight),
		maxQueuedBytes: cfg.MaxQueuedBytes,
		maxQueuedOps:   cfg.MaxQueuedOps,
	}
	if c.weight <= 0 {
		c.weight = 1
	}
	if c.maxQueuedBytes <= 0 {
		c.maxQueuedBytes = defaultQoSMaxQueuedB
	}
	if c.maxQueuedOps <= 0 {
		c.maxQueuedOps = defaultQoSMaxQueuedOp
	}
	if cfg.ByteRate > 0 {
		burst := cfg.ByteBurst
		if burst <= 0 {
			// One second of rate: enough to absorb bursts without
			// letting the short-term rate run far past the quota.
			burst = cfg.ByteRate
		}
		c.bytes = model.NewThrottle(q.clock, cfg.ByteRate, burst)
	}
	if cfg.OpRate > 0 {
		burst := cfg.OpBurst
		if burst <= 0 {
			burst = cfg.OpRate
		}
		c.ops = model.NewThrottle(q.clock, cfg.OpRate, burst)
	}
	q.classes[client] = c
	return c
}

// Do runs fn under the scheduler as a request from client with the given
// byte-weighted cost. It returns false — without running fn — when the
// admission controller sheds the request (queue bound exceeded or quota
// empty); the caller must answer StatusBusy. Otherwise it blocks until
// the weighted-fair dispatcher grants a slot, runs fn, and returns true.
func (q *qosSched) Do(client wire.ClientID, cost int64, fn func()) bool {
	if cost < qosMinCost {
		cost = qosMinCost
	}
	q.mu.Lock()
	c := q.classLocked(client)
	// Admission control: bound the backlog...
	if c.queuedBytes+cost > c.maxQueuedBytes || len(c.queue) >= c.maxQueuedOps {
		c.sheds++
		q.mu.Unlock()
		return false
	}
	// ...then charge quotas, non-blockingly. Ops first, bytes second: a
	// byte-quota shed burns one op token, which is negligible next to
	// the retry the client is about to pay anyway.
	if !c.ops.TryAcquire(1) || !c.bytes.TryAcquire(int(cost)) {
		c.sheds++
		q.mu.Unlock()
		return false
	}
	w := &qosWaiter{cost: cost, enq: q.clock.Now(), ready: make(chan struct{})}
	c.queue = append(c.queue, w)
	c.queuedBytes += cost
	if !c.active {
		c.active = true
		c.charged = false
		c.deficit = 0
		q.ring = append(q.ring, c)
	}
	q.dispatchLocked()
	q.mu.Unlock()

	<-w.ready
	fn()

	q.mu.Lock()
	q.inflight--
	c.inflight--
	c.servedOps++
	c.servedBytes += uint64(cost)
	c.hist.record(q.clock.Now().Sub(w.enq))
	q.dispatchLocked()
	q.mu.Unlock()
	return true
}

// classCapLocked bounds one class's concurrently dispatched requests to
// its weight share of the slot budget (ceiling, never below one), taken
// over the classes currently competing — queued or in flight. A class
// alone on the server gets every slot; under contention a heavy class
// cannot occupy the whole in-flight window, so another tenant's request
// waits for at most a service time or two rather than a full window
// drain. This is the concurrency-dimension analogue of the DRR byte
// shares: DRR fixes the order work is dispatched, the cap fixes how much
// of the slot budget any one tenant's dispatched work may hold.
func (q *qosSched) classCapLocked(c *qosClass) int {
	var total int64
	competing := 0
	for _, o := range q.classes {
		if o.active || o.inflight > 0 {
			total += o.weight
			competing++
		}
	}
	if competing <= 1 || total <= 0 {
		return q.slots
	}
	cap := int((int64(q.slots)*c.weight + total - 1) / total)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// dispatchLocked releases queued waiters into free slots in DRR order:
// each ring visit grants a class weight×quantum of deficit, the class
// dispatches head-of-line requests while its deficit covers their cost,
// and drained classes leave the ring (forfeiting leftover deficit, so an
// idle tenant cannot bank credit). Every completion and every enqueue
// re-runs this, so progress never depends on a background goroutine.
func (q *qosSched) dispatchLocked() {
	// capSkips counts consecutive ring visits rejected by the per-class
	// concurrency cap. Once it exceeds the ring length every backlogged
	// class is at its cap, and only a completion (which re-runs this)
	// can make progress — without the counter that state would spin.
	capSkips := 0
	for q.inflight < q.slots && len(q.ring) > 0 && capSkips <= len(q.ring) {
		c := q.ring[q.cursor]
		cap := q.classCapLocked(c)
		if c.inflight >= cap {
			// At its concurrency cap: skip without granting quantum.
			capSkips++
			q.cursor = (q.cursor + 1) % len(q.ring)
			continue
		}
		if !c.charged {
			c.deficit += c.weight * q.quantum
			c.charged = true
		}
		for q.inflight < q.slots && c.inflight < cap && len(c.queue) > 0 && c.deficit >= c.queue[0].cost {
			w := c.queue[0]
			c.queue[0] = nil
			c.queue = c.queue[1:]
			c.queuedBytes -= w.cost
			c.deficit -= w.cost
			q.inflight++
			c.inflight++
			capSkips = 0
			close(w.ready)
		}
		if q.inflight >= q.slots {
			// Out of slots mid-visit: resume this class (charged stays
			// set, so the quantum is not granted twice) on the next
			// completion.
			return
		}
		if len(c.queue) == 0 {
			c.active = false
			c.charged = false
			c.deficit = 0
			c.queue = nil
			q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
			if q.cursor >= len(q.ring) {
				q.cursor = 0
			}
			continue
		}
		// Head request costs more than the accumulated deficit (the
		// deficit persists and grows next round until it suffices, so
		// large requests are delayed, never starved) — or the class hit
		// its concurrency cap mid-visit. Move on.
		c.charged = false
		if c.inflight >= cap {
			capSkips++
		}
		q.cursor = (q.cursor + 1) % len(q.ring)
	}
}

// TenantStat is one principal's accounting snapshot.
type TenantStat struct {
	Client      wire.ClientID
	Weight      int
	Ops         uint64        // requests served
	Bytes       uint64        // byte-weighted cost served
	Sheds       uint64        // requests shed at admission
	Queued      int           // requests waiting now
	QueuedBytes int64         // cost waiting now
	P50         time.Duration // median service latency (enqueue → completion)
	P99         time.Duration // tail service latency
}

// TenantStats snapshots every class, in ascending client order.
func (q *qosSched) TenantStats() []TenantStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantStat, 0, len(q.classes))
	for _, c := range q.classes {
		out = append(out, TenantStat{
			Client:      c.client,
			Weight:      int(c.weight),
			Ops:         c.servedOps,
			Bytes:       c.servedBytes,
			Sheds:       c.sheds,
			Queued:      len(c.queue),
			QueuedBytes: c.queuedBytes,
			P50:         c.hist.quantile(0.50),
			P99:         c.hist.quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// histBuckets spans 64 µs × 2^i: bucket 0 holds latencies ≤ 64 µs,
// bucket 25 ≈ 36 minutes; the last bucket is a catch-all.
const (
	histBuckets = 26
	histBase    = 64 * time.Microsecond
)

// latencyHist is a fixed-bucket latency histogram. Quantiles come back
// as bucket upper bounds — coarse (powers of two) but constant-space and
// mergeable, which is what a per-tenant stat on a hot path can afford.
// Synchronization is the owner's problem (the scheduler's mu).
type latencyHist struct {
	count   uint64
	buckets [histBuckets]uint64
}

// record adds one observation.
func (h *latencyHist) record(d time.Duration) {
	i := 0
	for b := histBase; d > b && i < histBuckets-1; b <<= 1 {
		i++
	}
	h.count++
	h.buckets[i]++
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile (0 when empty).
func (h *latencyHist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			return histBase << i
		}
	}
	return histBase << (histBuckets - 1)
}
