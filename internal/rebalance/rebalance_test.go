package rebalance

import (
	"bytes"
	"context"
	"testing"
	"time"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/erasure"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

const (
	testFragSize = 4096
	testClient   = wire.ClientID(1)
)

type cluster struct {
	flaky []*transport.Flaky
	conns []transport.ServerConn
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		c.grow(t)
	}
	return c
}

func (c *cluster) grow(t *testing.T) transport.ServerConn {
	t.Helper()
	d := disk.NewMemDisk(8 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.NewFlaky(transport.NewLocal(wire.ServerID(len(c.conns)+1), st, testClient))
	c.flaky = append(c.flaky, fl)
	c.conns = append(c.conns, fl)
	return fl
}

func (c *cluster) open(t *testing.T, cfg core.Config) *core.Log {
	t.Helper()
	cfg.Client = testClient
	cfg.Servers = c.conns
	cfg.FragmentSize = testFragSize
	l, _, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func pattern(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*7 + j)
	}
	return b
}

func writeBlocks(t *testing.T, l *core.Log, lo, hi int) []core.BlockAddr {
	t.Helper()
	var addrs []core.BlockAddr
	for i := lo; i < hi; i++ {
		a, err := l.AppendBlock(7, pattern(i, 1024), nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	return addrs
}

func checkBlocks(t *testing.T, l *core.Log, addrs []core.BlockAddr, lo int) {
	t.Helper()
	for i, a := range addrs {
		got, err := l.Read(a, 0, 1024)
		if err != nil {
			t.Fatalf("read block %d: %v", lo+i, err)
		}
		if !bytes.Equal(got, pattern(lo+i, 1024)) {
			t.Fatalf("block %d corrupted", lo+i)
		}
	}
}

func drainAndRun(t *testing.T, l *core.Log, source wire.ServerID, opts Options) Stats {
	t.Helper()
	if _, err := l.DrainServer(source); err != nil {
		t.Fatal(err)
	}
	r := New(l, source, opts)
	if err := r.Run(context.Background()); err != nil {
		t.Fatalf("rebalance: %v (stats %+v)", err, r.Stats())
	}
	return r.Stats()
}

func TestDrainMigratesEverything(t *testing.T) {
	c := newCluster(t, 4)
	l := c.open(t, core.Config{Width: 3})
	addrs := writeBlocks(t, l, 0, 48)

	source := wire.ServerID(2)
	before, err := c.conns[source-1].List(testClient)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("source held nothing; test is vacuous")
	}
	st := drainAndRun(t, l, source, Options{})
	if !st.Done {
		t.Fatalf("drain not done: %+v", st)
	}
	if st.Moved < len(before) {
		t.Fatalf("moved %d of %d fragments", st.Moved, len(before))
	}
	if left, _ := c.conns[source-1].List(testClient); len(left) != 0 {
		t.Fatalf("%d fragments left on drained server", len(left))
	}
	// The server can now leave entirely, and everything still reads.
	if _, err := l.RemoveServer(source); err != nil {
		t.Fatal(err)
	}
	checkBlocks(t, l, addrs, 0)
	if ls := l.Stats(); ls.RebalancedFragments != int64(st.Moved) {
		t.Fatalf("log counted %d rebalanced, rebalancer %d", ls.RebalancedFragments, st.Moved)
	}
}

func TestDrainDeadSourceReconstructs(t *testing.T) {
	c := newCluster(t, 5)
	l := c.open(t, core.Config{Width: 4, ParityShards: 2, Codec: erasure.KindRS})
	addrs := writeBlocks(t, l, 0, 48)

	source := wire.ServerID(3)
	before, err := c.conns[source-1].List(testClient)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("source held nothing; test is vacuous")
	}
	// The server dies before the drain even starts: every fragment it
	// held must be rebuilt from stripe redundancy at its new home.
	c.flaky[source-1].SetDown(true)
	st := drainAndRun(t, l, source, Options{Workers: 2})
	if !st.Done {
		t.Fatalf("drain not done: %+v", st)
	}
	if st.Reconstructed == 0 {
		t.Fatalf("expected reconstructed moves, got %+v", st)
	}
	checkBlocks(t, l, addrs, 0)
	// Removal of the dead, drained server is allowed (List fails, but
	// the drain already re-homed its share), and reads keep working.
	if _, err := l.RemoveServer(source); err != nil {
		t.Fatal(err)
	}
	checkBlocks(t, l, addrs, 0)
}

func TestDrainResumesAfterCancel(t *testing.T) {
	c := newCluster(t, 4)
	l := c.open(t, core.Config{Width: 3})
	addrs := writeBlocks(t, l, 0, 64)

	source := wire.ServerID(1)
	if _, err := l.DrainServer(source); err != nil {
		t.Fatal(err)
	}
	// First run is cancelled almost immediately; Pace guarantees the
	// pass is still in flight when the context fires.
	ctx, cancel := context.WithCancel(context.Background())
	r := New(l, source, Options{Workers: 1, Pace: 2 * time.Millisecond})
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := r.Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled run returned %v", err)
	}

	// Second run finishes the job from a fresh survey.
	r2 := New(l, source, Options{})
	if err := r2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if left, _ := c.conns[source-1].List(testClient); len(left) != 0 {
		t.Fatalf("%d fragments left after resumed drain", len(left))
	}
	total := r.Stats().Moved + r2.Stats().Moved
	if dup := total - int(l.Stats().RebalancedFragments); dup != 0 {
		t.Fatalf("moves double-counted: %d", dup)
	}
	checkBlocks(t, l, addrs, 0)
}

func TestDrainUnderConcurrentWrites(t *testing.T) {
	c := newCluster(t, 4)
	l := c.open(t, core.Config{Width: 3})
	addrs := writeBlocks(t, l, 0, 24)

	source := wire.ServerID(2)
	if _, err := l.DrainServer(source); err != nil {
		t.Fatal(err)
	}
	r := New(l, source, Options{Workers: 2})
	done := make(chan error, 1)
	go func() { done <- r.Run(context.Background()) }()

	// Keep appending while the drain runs; none of it may land on the
	// draining server, and all of it must survive.
	more := writeBlocks(t, l, 100, 148)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if left, _ := c.conns[source-1].List(testClient); len(left) != 0 {
		t.Fatalf("%d fragments on draining server after concurrent writes", len(left))
	}
	checkBlocks(t, l, addrs, 0)
	checkBlocks(t, l, more, 100)
}
