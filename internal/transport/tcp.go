package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/wire"
)

// DefaultPoolSize is how many TCP connections a client keeps per server.
// Two matches the log layer's pipeline depth: one fragment can be in
// flight on the network while the server writes the previous one to disk.
const DefaultPoolSize = 2

// DefaultIOTimeout bounds each frame exchange (request write plus
// response read) on a pooled connection, and the dial itself. Without a
// deadline a hung server — as opposed to a dead one, whose RST fails
// fast — would stall the caller forever and with it every stripe that
// includes the server. Override per connection with SetIOTimeout.
const DefaultIOTimeout = 15 * time.Second

// tcpRPC multiplexes RPCs over a small pool of TCP connections. Each RPC
// checks out one connection for its request/response exchange, so up to
// poolSize RPCs proceed in parallel.
type tcpRPC struct {
	addr      string
	client    wire.ClientID
	nextID    atomic.Uint64
	ioTimeout atomic.Int64 // nanoseconds; 0 disables deadlines

	pool chan *tcpStream

	mu     sync.Mutex
	closed bool
	opened []*tcpStream
}

type tcpStream struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// TCPConn is a ServerConn over the wire protocol.
type TCPConn struct {
	conn
	rpc *tcpRPC
}

var _ ServerConn = (*TCPConn)(nil)

// DialTCP connects to a storage server at addr as the given client. The
// pool holds poolSize connections, dialed lazily (poolSize ≤ 0 uses
// DefaultPoolSize).
func DialTCP(id wire.ServerID, addr string, client wire.ClientID, poolSize int) (*TCPConn, error) {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	r := &tcpRPC{addr: addr, client: client, pool: make(chan *tcpStream, poolSize)}
	r.ioTimeout.Store(int64(DefaultIOTimeout))
	// Dial the first connection eagerly so configuration errors surface
	// at setup time; the rest are created on demand.
	s, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.pool <- s
	for i := 1; i < poolSize; i++ {
		r.pool <- nil // placeholder: dialed on first use
	}
	return &TCPConn{conn: conn{id: id, r: r}, rpc: r}, nil
}

// NewTCPConn returns a TCP ServerConn whose pooled connections are all
// dialed on demand, without requiring the server to be reachable now.
// This is how a client connects to a degraded cluster: operations fail
// with ErrUnavailable until the server answers, then the pool dials and
// the connection heals. DialTCP's eager first dial is preferable when
// configuration errors should surface at setup time.
func NewTCPConn(id wire.ServerID, addr string, client wire.ClientID, poolSize int) *TCPConn {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	r := &tcpRPC{addr: addr, client: client, pool: make(chan *tcpStream, poolSize)}
	r.ioTimeout.Store(int64(DefaultIOTimeout))
	for i := 0; i < poolSize; i++ {
		r.pool <- nil // dialed on first use
	}
	return &TCPConn{conn: conn{id: id, r: r}, rpc: r}
}

// SetIOTimeout changes the per-exchange I/O deadline (0 disables it).
// Safe to call concurrently with in-flight operations; they pick up the
// new value on their next exchange.
func (c *TCPConn) SetIOTimeout(d time.Duration) { c.rpc.ioTimeout.Store(int64(d)) }

func (t *tcpRPC) dial() (*tcpStream, error) {
	c, err := net.DialTimeout("tcp", t.addr, time.Duration(t.ioTimeout.Load()))
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, t.addr, err)
	}
	s := &tcpStream{c: c, r: wire.NewConnReader(c), w: wire.NewConnWriter(c)}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, ErrUnavailable
	}
	t.opened = append(t.opened, s)
	t.mu.Unlock()
	return s, nil
}

func (t *tcpRPC) call(op wire.Op, req wire.Message, rsp wire.Message) error {
	// One transparent retry: a pooled stream may be stale (the server
	// restarted on the same address), in which case the first exchange
	// fails at the transport level and a fresh dial usually succeeds.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		s, ok := <-t.pool
		if !ok {
			return ErrUnavailable
		}
		if s == nil {
			var err error
			if s, err = t.dial(); err != nil {
				// Return the slot so later calls can retry dialing.
				t.putBack(nil)
				return err
			}
		}
		id := t.nextID.Add(1)
		err := t.exchange(s, op, id, req, rsp)
		if err == nil {
			t.putBack(s)
			return nil
		}
		if _, isStatus := err.(*wire.StatusError); isStatus {
			t.putBack(s)
			return err
		}
		// Transport-level failure: drop the stream, leave a placeholder
		// so the pool can re-dial.
		s.c.Close()
		t.putBack(nil)
		lastErr = err
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

func (t *tcpRPC) putBack(s *tcpStream) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		if s != nil {
			s.c.Close()
		}
		return
	}
	t.pool <- s
}

func (t *tcpRPC) exchange(s *tcpStream, op wire.Op, id uint64, req, rsp wire.Message) error {
	// Deadline covering the whole exchange: a server that accepted the
	// connection but stopped serving must not hang the caller. The
	// deadline is cleared on success so idle pooled streams don't expire.
	if d := time.Duration(t.ioTimeout.Load()); d > 0 {
		if err := s.c.SetDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer s.c.SetDeadline(time.Time{})
	}
	if err := wire.WriteRequest(s.w, op, id, t.client, req); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	frame, err := wire.ReadResponseFrame(s.r)
	if err != nil {
		return err
	}
	if frame.ID != id {
		return fmt.Errorf("response id %d for request %d", frame.ID, id)
	}
	if err := frame.Err(); err != nil {
		return err
	}
	return rsp.Decode(wire.NewDecoder(frame.Body))
}

// Close implements ServerConn, closing all pooled connections.
func (c *TCPConn) Close() error {
	t := c.rpc
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, s := range t.opened {
		s.c.Close()
	}
	t.mu.Unlock()
	// Drain the pool so blocked callers get ErrUnavailable promptly.
	for {
		select {
		case <-t.pool:
		default:
			close(t.pool)
			return nil
		}
	}
}
