// Package codec implements the block-transforming services the paper
// lists among the services that can be layered on the log (§2.2): "a
// caching service...; an encryption service; a compression service;
// etc.". A Codec transforms block payloads on their way into the log and
// back on the way out; services compose them with their block I/O (the
// logical disk accepts one directly), and Chain stacks them — compression
// before encryption, exactly the layering §2.2's interception model
// describes.
package codec

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Codec errors.
var (
	// ErrCorrupt is returned when a payload fails to decode.
	ErrCorrupt = errors.New("codec: corrupt payload")
)

// Codec transforms block payloads. Encode and Decode must be inverses;
// both must be safe for concurrent use.
type Codec interface {
	// Encode transforms a plaintext payload into its stored form.
	Encode(p []byte) ([]byte, error)
	// Decode recovers the plaintext from the stored form.
	Decode(p []byte) ([]byte, error)
	// Name identifies the codec (diagnostics).
	Name() string
}

// Identity is the no-op codec.
type Identity struct{}

var _ Codec = Identity{}

// Encode implements Codec.
func (Identity) Encode(p []byte) ([]byte, error) { return p, nil }

// Decode implements Codec.
func (Identity) Decode(p []byte) ([]byte, error) { return p, nil }

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// Flate is the compression service: DEFLATE with a configurable level.
type Flate struct {
	level int
}

var _ Codec = (*Flate)(nil)

// NewFlate returns a Flate codec. Level follows compress/flate (use
// flate.DefaultCompression for the default).
func NewFlate(level int) (*Flate, error) {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("codec: flate level %d out of range", level)
	}
	return &Flate{level: level}, nil
}

// Encode implements Codec.
func (f *Flate) Encode(p []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, f.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(p); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (f *Flate) Decode(p []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(p))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
	}
	return out, nil
}

// Name implements Codec.
func (f *Flate) Name() string { return "flate" }

// AESCTR is the encryption service: AES in counter mode with a random
// per-block nonce prepended to the ciphertext. Blocks in a log move (the
// cleaner relocates them), so the nonce must travel with the data rather
// than derive from the address.
type AESCTR struct {
	block cipher.Block
}

var _ Codec = (*AESCTR)(nil)

// NewAESCTR returns an AES-CTR codec; the key must be 16, 24, or 32
// bytes.
func NewAESCTR(key []byte) (*AESCTR, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return &AESCTR{block: block}, nil
}

// Encode implements Codec.
func (a *AESCTR) Encode(p []byte) ([]byte, error) {
	out := make([]byte, aes.BlockSize+len(p))
	nonce := out[:aes.BlockSize]
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	cipher.NewCTR(a.block, nonce).XORKeyStream(out[aes.BlockSize:], p)
	return out, nil
}

// Decode implements Codec.
func (a *AESCTR) Decode(p []byte) ([]byte, error) {
	if len(p) < aes.BlockSize {
		return nil, fmt.Errorf("%w: ciphertext shorter than nonce", ErrCorrupt)
	}
	out := make([]byte, len(p)-aes.BlockSize)
	cipher.NewCTR(a.block, p[:aes.BlockSize]).XORKeyStream(out, p[aes.BlockSize:])
	return out, nil
}

// Name implements Codec.
func (a *AESCTR) Name() string { return "aes-ctr" }

// Chain composes codecs: Encode applies them in order, Decode in reverse.
// Chain(compress, encrypt) compresses then encrypts — the useful order,
// since ciphertext doesn't compress.
type Chain struct {
	codecs []Codec
}

var _ Codec = (*Chain)(nil)

// NewChain composes the given codecs.
func NewChain(codecs ...Codec) *Chain { return &Chain{codecs: codecs} }

// Encode implements Codec.
func (c *Chain) Encode(p []byte) ([]byte, error) {
	var err error
	for _, cd := range c.codecs {
		if p, err = cd.Encode(p); err != nil {
			return nil, fmt.Errorf("%s encode: %w", cd.Name(), err)
		}
	}
	return p, nil
}

// Decode implements Codec.
func (c *Chain) Decode(p []byte) ([]byte, error) {
	var err error
	for i := len(c.codecs) - 1; i >= 0; i-- {
		if p, err = c.codecs[i].Decode(p); err != nil {
			return nil, fmt.Errorf("%s decode: %w", c.codecs[i].Name(), err)
		}
	}
	return p, nil
}

// Name implements Codec.
func (c *Chain) Name() string {
	name := "chain("
	for i, cd := range c.codecs {
		if i > 0 {
			name += "+"
		}
		name += cd.Name()
	}
	return name + ")"
}
